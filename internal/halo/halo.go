// Package halo implements the halo-exchange motif the paper's introduction
// names as a core producer-consumer pattern: a 2D Jacobi sweep on a
// process grid where each rank exchanges four boundary strips with its
// neighbors every iteration.
//
// Variants mirror the paper's comparison. Notified Access uses the
// counting feature exactly as designed for this pattern: each rank arms a
// single request with expectedCount = number of neighbors, and one
// notified put per neighbor delivers both the strip and the
// synchronization — one transaction per halo.
package halo

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mp"
	"repro/internal/rma"
	"repro/internal/runtime"
	"repro/internal/simtime"
)

// Variant selects the communication scheme.
type Variant int

const (
	// MP exchanges strips with Irecv/Send pairs.
	MP Variant = iota
	// PSCW uses per-iteration general active target epochs.
	PSCW
	// NA uses counting notified puts (one request for all neighbors).
	NA
)

func (v Variant) String() string {
	switch v {
	case MP:
		return "mp"
	case PSCW:
		return "pscw"
	case NA:
		return "na"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Variants lists all schemes in presentation order.
var Variants = []Variant{MP, PSCW, NA}

// Options configures a run.
type Options struct {
	// PX, PY is the process grid (PX*PY must equal the rank count).
	PX, PY int
	// BX, BY is the local block size (interior cells per rank).
	BX, BY int
	// Iters is the number of Jacobi sweeps.
	Iters int
	// CellCost is the modeled per-cell update cost (default 1ns).
	CellCost simtime.Duration
	Variant  Variant
}

func (o Options) withDefaults() Options {
	if o.CellCost == 0 {
		o.CellCost = 1
	}
	if o.Iters == 0 {
		o.Iters = 1
	}
	return o
}

// Result reports a finished run.
type Result struct {
	Elapsed simtime.Duration
	// Checksum is the sum of all interior cells after the final sweep
	// (identical on matching Serial runs; validated on every rank's block).
	Checksum float64
	Valid    bool
}

// directions: 0=west, 1=east, 2=north, 3=south.
const (
	dirW = iota
	dirE
	dirN
	dirS
	numDirs
)

// grid is one rank's block with a one-cell halo ring: (BX+2) x (BY+2),
// row-major; interior is [1..BY][1..BX].
type grid struct {
	p       *runtime.Proc
	o       Options
	px, py  int // my grid coordinates
	w, h    int // interior dims (BX, BY)
	a, b    []float64
	nbr     [numDirs]int // neighbor rank or -1
	sendBuf [numDirs][]float64
}

func newGrid(p *runtime.Proc, o Options) *grid {
	if o.PX*o.PY != p.N() {
		panic(fmt.Sprintf("halo: process grid %dx%d != %d ranks", o.PX, o.PY, p.N()))
	}
	g := &grid{
		p: p, o: o,
		px: p.Rank() % o.PX, py: p.Rank() / o.PX,
		w: o.BX, h: o.BY,
	}
	stride := g.w + 2
	g.a = make([]float64, stride*(g.h+2))
	g.b = make([]float64, stride*(g.h+2))
	g.nbr = [numDirs]int{-1, -1, -1, -1}
	if g.px > 0 {
		g.nbr[dirW] = p.Rank() - 1
	}
	if g.px < o.PX-1 {
		g.nbr[dirE] = p.Rank() + 1
	}
	if g.py > 0 {
		g.nbr[dirN] = p.Rank() - o.PX
	}
	if g.py < o.PY-1 {
		g.nbr[dirS] = p.Rank() + o.PX
	}
	for d := 0; d < numDirs; d++ {
		g.sendBuf[d] = make([]float64, g.stripLen(d))
	}
	g.init()
	return g
}

func (g *grid) stride() int { return g.w + 2 }

// stripLen is the number of cells in the halo strip for direction d.
func (g *grid) stripLen(d int) int {
	if d == dirW || d == dirE {
		return g.h
	}
	return g.w
}

// init seeds the interior with a deterministic global function of the
// global cell coordinates, so Serial and distributed runs agree exactly.
func (g *grid) init() {
	for y := 1; y <= g.h; y++ {
		for x := 1; x <= g.w; x++ {
			gx := g.px*g.w + (x - 1)
			gy := g.py*g.h + (y - 1)
			g.a[y*g.stride()+x] = seed(gx, gy)
		}
	}
}

func seed(gx, gy int) float64 {
	return float64((gx*31+gy*17)%97) / 7
}

// gatherStrip copies the boundary strip for direction d into buf.
func (g *grid) gatherStrip(d int, buf []float64) {
	s := g.stride()
	switch d {
	case dirW:
		for y := 1; y <= g.h; y++ {
			buf[y-1] = g.a[y*s+1]
		}
	case dirE:
		for y := 1; y <= g.h; y++ {
			buf[y-1] = g.a[y*s+g.w]
		}
	case dirN:
		copy(buf, g.a[1*s+1:1*s+1+g.w])
	case dirS:
		copy(buf, g.a[g.h*s+1:g.h*s+1+g.w])
	}
}

// scatterStrip writes a received strip into the halo ring for direction d
// (d is the direction the strip came FROM).
func (g *grid) scatterStrip(d int, buf []float64) {
	s := g.stride()
	switch d {
	case dirW:
		for y := 1; y <= g.h; y++ {
			g.a[y*s+0] = buf[y-1]
		}
	case dirE:
		for y := 1; y <= g.h; y++ {
			g.a[y*s+g.w+1] = buf[y-1]
		}
	case dirN:
		copy(g.a[0*s+1:0*s+1+g.w], buf)
	case dirS:
		copy(g.a[(g.h+1)*s+1:(g.h+1)*s+1+g.w], buf)
	}
}

// sweep performs one Jacobi update of the interior (a -> b, then swap).
func (g *grid) sweep() {
	s := g.stride()
	g.p.Work(g.o.CellCost*simtime.Duration(g.w*g.h), func() {
		for y := 1; y <= g.h; y++ {
			for x := 1; x <= g.w; x++ {
				g.b[y*s+x] = 0.25 * (g.a[y*s+x-1] + g.a[y*s+x+1] + g.a[(y-1)*s+x] + g.a[(y+1)*s+x])
			}
		}
	})
	g.a, g.b = g.b, g.a
}

func (g *grid) checksum() float64 {
	s := g.stride()
	sum := 0.0
	for y := 1; y <= g.h; y++ {
		for x := 1; x <= g.w; x++ {
			sum += g.a[y*s+x]
		}
	}
	return sum
}

// opposite direction (the tag a neighbor uses when sending toward us).
func opposite(d int) int {
	switch d {
	case dirW:
		return dirE
	case dirE:
		return dirW
	case dirN:
		return dirS
	}
	return dirN
}

func encodeStrip(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func decodeStrip(b []byte, out []float64) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
}

// Run executes the halo-exchange Jacobi benchmark collectively.
func Run(p *runtime.Proc, o Options) Result {
	o = o.withDefaults()
	g := newGrid(p, o)
	var exchange func(iter int)

	switch o.Variant {
	case MP:
		c := mp.New(p)
		recv := make([]float64, max(g.w, g.h))
		exchange = func(iter int) {
			var reqs [numDirs]*mp.RecvReq
			bufs := make([][]byte, numDirs)
			for d := 0; d < numDirs; d++ {
				if g.nbr[d] < 0 {
					continue
				}
				bufs[d] = make([]byte, 8*g.stripLen(d))
				reqs[d] = c.Irecv(bufs[d], g.nbr[d], d)
			}
			for d := 0; d < numDirs; d++ {
				if g.nbr[d] < 0 {
					continue
				}
				g.gatherStrip(d, g.sendBuf[d])
				// Tag with the direction the RECEIVER sees us from.
				c.Send(g.nbr[d], opposite(d), encodeStrip(g.sendBuf[d]))
			}
			for d := 0; d < numDirs; d++ {
				if reqs[d] == nil {
					continue
				}
				c.WaitRecv(reqs[d])
				strip := recv[:g.stripLen(d)]
				decodeStrip(bufs[d], strip)
				g.scatterStrip(d, strip)
			}
		}

	case PSCW, NA:
		// Window layout: per parity, one strip slot per direction.
		maxStrip := max(g.w, g.h)
		slotBytes := 8 * maxStrip
		win := rma.Allocate(p, 2*numDirs*slotBytes)
		defer win.Free()
		slotOff := func(parity, d int) int { return (parity*numDirs + d) * slotBytes }

		var neighbors []int
		nNbr := 0
		for d := 0; d < numDirs; d++ {
			if g.nbr[d] >= 0 {
				neighbors = append(neighbors, g.nbr[d])
				nNbr++
			}
		}
		recv := make([]float64, maxStrip)

		if o.Variant == NA {
			// One counting request per parity; the tag IS the parity, so a
			// neighbor running one iteration ahead cannot satisfy the
			// current request. Slots identify the direction, so the
			// notification itself needs no per-strip tag.
			var reqs [2]*core.Request
			if nNbr > 0 {
				for par := 0; par < 2; par++ {
					r := core.NotifyInit(win, core.AnySource, par, nNbr)
					reqs[par] = r
					defer r.Free()
				}
			}
			exchange = func(iter int) {
				parity := iter % 2
				for d := 0; d < numDirs; d++ {
					if g.nbr[d] < 0 {
						continue
					}
					g.gatherStrip(d, g.sendBuf[d])
					od := opposite(d)
					core.PutNotify(win, g.nbr[d], slotOff(parity, od), encodeStrip(g.sendBuf[d]), parity)
				}
				if nNbr == 0 {
					return
				}
				// One counting request covers all neighbors (the paper's
				// bulk-notification optimization).
				reqs[parity].Start()
				reqs[parity].Wait()
				for d := 0; d < numDirs; d++ {
					if g.nbr[d] < 0 {
						continue
					}
					strip := recv[:g.stripLen(d)]
					decodeStrip(win.Buffer()[slotOff(parity, d):], strip)
					g.scatterStrip(d, strip)
				}
			}
		} else { // PSCW
			exchange = func(iter int) {
				parity := iter % 2
				if nNbr == 0 {
					return
				}
				win.Post(neighbors)
				win.Start(neighbors)
				for d := 0; d < numDirs; d++ {
					if g.nbr[d] < 0 {
						continue
					}
					g.gatherStrip(d, g.sendBuf[d])
					od := opposite(d)
					win.Put(g.nbr[d], slotOff(parity, od), encodeStrip(g.sendBuf[d]))
				}
				win.Complete()
				win.Wait()
				for d := 0; d < numDirs; d++ {
					if g.nbr[d] < 0 {
						continue
					}
					strip := recv[:g.stripLen(d)]
					decodeStrip(win.Buffer()[slotOff(parity, d):], strip)
					g.scatterStrip(d, strip)
				}
			}
		}

	default:
		panic(fmt.Sprintf("halo: unknown variant %d", int(o.Variant)))
	}

	p.Barrier()
	start := p.Now()
	for iter := 0; iter < o.Iters; iter++ {
		exchange(iter)
		g.sweep()
	}
	elapsed := p.Now().Sub(start)
	p.Barrier()

	res := Result{Elapsed: elapsed, Checksum: g.checksum()}
	// Validate this rank's block against the serial reference.
	ref := Serial(o)
	res.Valid = true
	s := g.stride()
	refStride := o.PX*o.BX + 2
	for y := 1; y <= g.h; y++ {
		for x := 1; x <= g.w; x++ {
			gx := g.px*g.w + x
			gy := g.py*g.h + y
			if math.Abs(g.a[y*s+x]-ref[gy*refStride+gx]) > 1e-12 {
				res.Valid = false
			}
		}
	}
	return res
}

// Serial computes the same Jacobi sweeps on one thread over the global
// domain ((PX*BX+2) x (PY*BY+2) with zero boundary) and returns the grid.
func Serial(o Options) []float64 {
	o = o.withDefaults()
	W, H := o.PX*o.BX, o.PY*o.BY
	s := W + 2
	a := make([]float64, s*(H+2))
	b := make([]float64, s*(H+2))
	for y := 1; y <= H; y++ {
		for x := 1; x <= W; x++ {
			a[y*s+x] = seed(x-1, y-1)
		}
	}
	for it := 0; it < o.Iters; it++ {
		for y := 1; y <= H; y++ {
			for x := 1; x <= W; x++ {
				b[y*s+x] = 0.25 * (a[y*s+x-1] + a[y*s+x+1] + a[(y-1)*s+x] + a[(y+1)*s+x])
			}
		}
		a, b = b, a
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
