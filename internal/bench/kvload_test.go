package bench

import "testing"

// TestKVLoadP99Floor pins the CI regression bar: under the quick open-loop
// run at half saturation, the TCP transport's p99 must stay below a
// generous ceiling. The bound is loose (shared CI runners jitter hard) —
// it exists to catch order-of-magnitude regressions in the AM apply path
// or the notified-put data plane, not to benchmark the machine.
func TestKVLoadP99Floor(t *testing.T) {
	old := Quick
	Quick = true
	defer func() { Quick = old }()
	tab := KVLoad()
	maxP99us := 20000.0
	if raceEnabled {
		// The race detector slows the whole data plane ~10x; keep the gate
		// an order-of-magnitude check there too.
		maxP99us *= 10
	}
	for _, tr := range []string{"tcp", "shm"} {
		p99, ok := tab.Metrics["p99_"+tr]
		if !ok {
			t.Fatalf("kvload reported no p99_%s metric", tr)
		}
		if p99 <= 0 || p99 > maxP99us {
			t.Errorf("kvload %s p99 = %.1f us, want (0, %.0f]", tr, p99, maxP99us)
		}
	}
	for _, key := range []string{"sat_real", "sat_tcp", "sat_shm", "p50_tcp", "p999_tcp"} {
		if v := tab.Metrics[key]; v <= 0 {
			t.Errorf("metric %s = %v, want > 0", key, v)
		}
	}
}
