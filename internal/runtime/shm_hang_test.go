package runtime

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/shmfab"
)

// TestShmHangModeTripsHeartbeat freezes rank 1 with the injector's hang
// mode — sends silenced, heartbeat suppressed, process alive and still
// consuming — and requires the survivor to convict it through the segment
// heartbeat detector. A hung process is the failure shared memory cannot
// see any other way: the segment stays mapped and the rings stay open, so
// only the liveness word going quiet distinguishes it from a slow peer.
// The test pins the whole chain: injector hang → down hook →
// SuppressHeartbeat → stall conviction → ErrPeerFailed at the survivor,
// plus the injector actually absorbing the hung rank's sends.
func TestShmHangModeTripsHeartbeat(t *testing.T) {
	const n = 2
	seg := shmfab.NewHeapSegment(0, 1)
	var (
		mu   sync.Mutex
		injs [n]*fault.Injector
	)
	errs := make([]error, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			segs := make([]*shmfab.Segment, n)
			segs[1-r] = seg
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[r] = RunShm(ShmOptions{
					Self:              r,
					Segments:          segs,
					HeartbeatInterval: 2 * time.Millisecond,
					HeartbeatTimeout:  250 * time.Millisecond,
					StartupGrace:      2 * time.Second,
				}, Options{Ranks: n, FaultPlan: &fault.Plan{}}, func(p *Proc) {
					inj := p.World().Fabric().Injector()
					mu.Lock()
					injs[p.Rank()] = inj
					mu.Unlock()
					p.Barrier() // the hang strikes an established, healthy job
					if p.Rank() == 1 {
						inj.Hang(1)
					}
					// Rank 1's half of this barrier is absorbed by the
					// injector, so it can only resolve through the failure
					// detector — on both sides: rank 0 convicts the stalled
					// heartbeat, and rank 1 (parked, still consuming)
					// convicts rank 0 once its abrupt close stops *its*
					// heartbeat.
					p.Barrier()
					if p.Rank() == 0 {
						t.Error("rank 0 passed a barrier with a hung peer")
					}
				})
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cluster never unwound after the hang")
	}
	if !errors.Is(errs[0], fabric.ErrPeerFailed) {
		t.Errorf("survivor error = %v, want errors.Is(..., ErrPeerFailed)", errs[0])
	}
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "heartbeat stalled") {
		t.Errorf("survivor error = %v, want the heartbeat detector's verdict", errs[0])
	}
	if !errors.Is(errs[1], fabric.ErrPeerFailed) {
		t.Errorf("hung rank error = %v, want errors.Is(..., ErrPeerFailed)", errs[1])
	}
	mu.Lock()
	inj := injs[1]
	mu.Unlock()
	if st := inj.Stats(); st.RankDropped == 0 {
		t.Error("hang mode absorbed no packets — the barrier's silence came from somewhere else")
	}
}
