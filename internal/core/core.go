// Package core implements Notified Access, the paper's contribution: RMA
// put/get operations that carry a <source, tag> notification matched at the
// target through persistent requests — the foMPI-NA interface
// (MPI_Put_notify / MPI_Get_notify / MPI_Notify_init / MPI_Start /
// MPI_Test / MPI_Wait) rebuilt in Go on the simulated fabric.
//
// Implementation follows the paper §IV-B, with the target-side matching
// done by a per-window dispatch engine instead of a scanned queue:
//
//   - The origin attaches a 4-byte immediate to the RDMA operation; source
//     rank and tag are encoded in its two half-words. The data movement is
//     entirely "hardware" (fabric); only the lightweight notification is
//     processed in software at the target.
//   - Each window registers a notification sink with the NIC, which
//     dispatches destination-CQ entries to the owning window's matcher at
//     delivery time. The matcher keeps a hash table of armed persistent
//     requests keyed by <source, tag> plus ordered wildcard lists
//     (AnySource / AnyTag / both), so an arriving notification finds the
//     earliest-armed matching request in O(1) — there is no shared queue
//     to drain and no cross-window interference.
//   - Notifications with no armed match land in a bucketed unexpected
//     store: one hash bucket per <source, tag> plus per-source, per-tag,
//     and global arrival-order FIFOs over shared nodes. A newly Started
//     request consumes its backlog from the one FIFO matching its wildcard
//     class — oldest first, without scanning unrelated notifications.
//     Together with delivery-time crediting this preserves the paper's
//     arrival-order matching semantics: a request is only credited fresh
//     notifications once its stored backlog is exhausted.
//   - Requests are persistent: Notify_init allocates (the 32-byte structure
//     of the paper), Start re-arms (resetting the matched counter and
//     draining backlog), Test and Wait charge the modeled receive/match
//     overheads for credits accumulated since the last call, Free releases.
//     A request completes after ExpectedCount matching notifications; its
//     Status reports the last match.
//   - AnySource / AnyTag wildcards match in arrival order; counting
//     requests (ExpectedCount > 1) implement the bulk-notification
//     optimization used by the tree reduction.
package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/match"
	"repro/internal/rma"
)

// Wildcards for notification matching.
const (
	// AnySource matches notifications from every origin.
	AnySource = -1
	// AnyTag matches every tag.
	AnyTag = -1
)

// MaxTag is the largest encodable tag: the immediate carries the tag in its
// low 16 bits (the hardware constraint the paper notes for uGNI's 4-byte
// values).
const MaxTag = 1<<16 - 1

// MaxSource is the largest encodable source rank: the immediate carries the
// source in its high 16 bits.
const MaxSource = 1<<16 - 1

// EncodeImm packs source rank and tag into the 4-byte immediate ("we encode
// the source rank and tag into the first and last two bytes"). It panics if
// source is outside [0, MaxSource] or tag is outside [0, MaxTag].
func EncodeImm(source, tag int) uint32 {
	if source < 0 || source > MaxSource {
		panic(fmt.Sprintf("core: source %d out of range [0,%d]", source, MaxSource))
	}
	if tag < 0 || tag > MaxTag {
		panic(fmt.Sprintf("core: tag %d out of range [0,%d]", tag, MaxTag))
	}
	return uint32(source)<<16 | uint32(tag)
}

// DecodeImm unpacks an immediate into source rank and tag.
func DecodeImm(imm uint32) (source, tag int) {
	return int(imm >> 16), int(imm & 0xffff)
}

// Status reports the last matching notified access of a completed request.
type Status struct {
	Source int
	Tag    int
}

// Request is a persistent notification request (the paper's 32-byte
// structure: window, rank, tag, type, count, matched).
type Request struct {
	state  *naState
	win    *rma.Win
	source int
	tag    int
	count  int

	// active and freed are owner-rank lifecycle flags: active is set by
	// Start and cleared when Test/Wait observes completion (or by Free).
	active bool
	freed  bool

	// The fields below are guarded by state.mu: the matcher credits armed
	// requests at delivery time, which under the Real engine happens on the
	// NIC receive goroutine.
	matched   int // matching notifications consumed since the last Start
	uncharged int // credits whose modeled overhead Test/Wait has not yet charged
	last      Status
	posted    bool                          // linked in the matcher's armed-request index
	entry     *match.PostedEntry[*Request] // live index entry handle
}

// NotifyInit allocates a persistent notification request bound to win,
// matching (source, tag) — wildcards allowed — and completing after
// expectedCount matching notified accesses (MPI_Notify_init). The request
// must be armed with Start before each use and released with Free.
func NotifyInit(win *rma.Win, source, tag, expectedCount int) *Request {
	p := win.Proc()
	if expectedCount <= 0 {
		panic(fmt.Sprintf("core: rank %d: expectedCount must be positive, got %d", p.Rank(), expectedCount))
	}
	if tag != AnyTag && (tag < 0 || tag > MaxTag) {
		panic(fmt.Sprintf("core: rank %d: tag %d out of range", p.Rank(), tag))
	}
	if source != AnySource && (source < 0 || source >= p.N()) {
		panic(fmt.Sprintf("core: rank %d: source %d out of range", p.Rank(), source))
	}
	p.Sleep(p.Model().TInit)
	return &Request{state: state(p), win: win, source: source, tag: tag, count: expectedCount}
}

// Start arms the request for a new round of matching (MPI_Start): it
// resets the matched counter, consumes any matching backlog from the
// window's unexpected store (oldest first), and — if still incomplete —
// posts the request in the matcher's index so arriving notifications are
// credited to it at delivery time.
func (r *Request) Start() {
	if r.freed {
		panic("core: Start on freed request")
	}
	if r.active {
		panic("core: Start on active request")
	}
	p := r.win.Proc()
	p.Sleep(p.Model().TStart)
	r.active = true
	s := r.state
	s.mu.Lock()
	r.matched = 0
	r.uncharged = 0
	m := s.matcherLocked(r.win.UserRegionID())
	for r.matched < r.count {
		nd := m.store.Pop(r.source, r.tag)
		if nd == nil {
			break
		}
		m.backlogMatched++
		r.matched++
		r.uncharged++
		r.last = Status{Source: nd.Source, Tag: nd.Tag}
	}
	if r.matched < r.count {
		s.postLocked(m, r)
	}
	s.mu.Unlock()
}

// Test advances matching without blocking (MPI_Test): it charges the
// modeled receive + match overhead for every notification credited since
// the last call and reports whether the request completed. On completion
// the request de-activates and Status returns the last matching access.
func (r *Request) Test() bool {
	if r.freed {
		panic("core: Test on freed request")
	}
	if !r.active {
		// Completed (or never started): MPI_Test on an inactive request
		// returns true with an empty status.
		return true
	}
	s := r.state
	s.mu.Lock()
	credits := r.uncharged
	r.uncharged = 0
	done := r.matched >= r.count
	s.mu.Unlock()
	if credits > 0 {
		p := r.win.Proc()
		m := p.Model()
		for i := 0; i < credits; i++ {
			p.Sleep(m.ORecv)
			p.Sleep(m.TMatchScan)
		}
	}
	if done {
		r.active = false
	}
	return done
}

// Wait blocks until the request completes and returns the status of the
// last matching notified access (MPI_Wait).
func (r *Request) Wait() Status {
	p := r.win.Proc()
	s := r.state
	for !r.Test() {
		s.mu.Lock()
		for r.uncharged == 0 && r.matched < r.count && s.failed == nil {
			s.gate.Wait(p.Proc)
		}
		err := s.failed
		stalled := r.uncharged == 0 && r.matched < r.count
		s.mu.Unlock()
		if err != nil && stalled {
			// A peer died and this request has no further progress to
			// consume: the awaited notification may never come.
			panic(err)
		}
	}
	return r.Status()
}

// Status returns the last matching access of the most recent completion.
func (r *Request) Status() Status {
	s := r.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.last
}

// Matched returns the current matched count (diagnostics).
func (r *Request) Matched() int {
	s := r.state
	s.mu.Lock()
	defer s.mu.Unlock()
	return r.matched
}

// Free releases the persistent request (MPI_Request_free). An armed
// request is unposted from the matcher first.
func (r *Request) Free() {
	if r.freed {
		panic("core: double Free")
	}
	p := r.win.Proc()
	p.Sleep(p.Model().TFree)
	s := r.state
	s.mu.Lock()
	if r.posted {
		if m := s.wins[r.win.UserRegionID()]; m != nil {
			s.unpostLocked(m, r)
		} else {
			r.posted = false
		}
	}
	s.mu.Unlock()
	r.active = false
	r.freed = true
}

// PutNotify writes data into target's window at targetOff and delivers a
// <source, tag> notification with it (MPI_Put_notify). A single network
// transaction carries both. Zero-byte payloads send the notification only.
// The returned handle completes at remote commitment (for flush-style
// reuse of the origin buffer).
func PutNotify(win *rma.Win, target, targetOff int, data []byte, tag int) *fabric.Op {
	p := win.Proc()
	imm := fabric.WithImm(EncodeImm(p.Rank(), tag))
	return win.NIC().Put(p.Proc, target, win.UserRegionID(), targetOff, data, imm)
}

// GetNotify reads len(dst) bytes from target's window at targetOff into
// dst and notifies the *target* that its buffer has been read and may be
// reused (MPI_Get_notify) — the consumer-managed-buffering primitive of
// paper §VI-B. The returned handle completes when the data lands at the
// origin.
func GetNotify(win *rma.Win, target, targetOff int, dst []byte, tag int) *fabric.Op {
	p := win.Proc()
	imm := fabric.WithImm(EncodeImm(p.Rank(), tag))
	return win.NIC().Get(p.Proc, target, win.UserRegionID(), targetOff, dst, imm)
}

// AccumulateNotify applies an element-wise float64 reduction into target's
// window with a notification (the notified-accumulate extension the paper
// lists for MPI's accumulate family).
func AccumulateNotify(win *rma.Win, target, targetOff int, vals []float64, op fabric.AccumOp, tag int) *fabric.Op {
	p := win.Proc()
	imm := fabric.WithImm(EncodeImm(p.Rank(), tag))
	return win.NIC().Accumulate(p.Proc, target, win.UserRegionID(), targetOff, vals, op, imm)
}

// PendingNotifications returns the depth of win's unexpected store at this
// rank (diagnostics for the matching-cost benches).
func PendingNotifications(win *rma.Win) int {
	s := state(win.Proc())
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.wins[win.UserRegionID()]; m != nil {
		return m.store.Depth()
	}
	return 0
}

// Iprobe reports whether a notification matching (source, tag) is
// available on win without consuming it, returning its envelope — the
// probe semantics the paper notes "can be added trivially". Notifications
// already claimed by an armed request are not probeable.
func Iprobe(win *rma.Win, source, tag int) (Status, bool) {
	s := state(win.Proc())
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.matcherLocked(win.UserRegionID())
	if nd := m.store.Peek(source, tag); nd != nil {
		return Status{Source: nd.Source, Tag: nd.Tag}, true
	}
	return Status{}, false
}

// Probe blocks until a notification matching (source, tag) is available on
// win without consuming it.
func Probe(win *rma.Win, source, tag int) Status {
	p := win.Proc()
	s := state(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		m := s.matcherLocked(win.UserRegionID())
		if nd := m.store.Peek(source, tag); nd != nil {
			return Status{Source: nd.Source, Tag: nd.Tag}
		}
		if s.failed != nil {
			panic(s.failed) // deferred unlock above releases s.mu
		}
		s.gate.Wait(p.Proc)
	}
}

// WaitAll blocks until every request completes (MPI_Waitall). Requests may
// live on different windows of the same rank.
func WaitAll(reqs ...*Request) {
	for _, r := range reqs {
		r.Wait()
	}
}

// TestAll advances matching and reports whether every request is complete
// (MPI_Testall).
func TestAll(reqs ...*Request) bool {
	all := true
	for _, r := range reqs {
		if !r.Test() {
			all = false
		}
	}
	return all
}

// WaitAny blocks until at least one of the requests completes and returns
// its index (MPI_Waitany). All requests must belong to the same rank.
func WaitAny(reqs ...*Request) int {
	if len(reqs) == 0 {
		panic("core: WaitAny with no requests")
	}
	p := reqs[0].win.Proc()
	s := reqs[0].state
	for {
		for i, r := range reqs {
			if r.Test() {
				return i
			}
		}
		s.mu.Lock()
		for !anyReadyLocked(reqs) && s.failed == nil {
			s.gate.Wait(p.Proc)
		}
		err := s.failed
		ready := anyReadyLocked(reqs)
		s.mu.Unlock()
		if err != nil && !ready {
			panic(err)
		}
	}
}

// anyReadyLocked reports whether some request has progress for Test to
// observe. Callers hold the state mutex.
func anyReadyLocked(reqs []*Request) bool {
	for _, r := range reqs {
		if !r.active || r.uncharged > 0 || r.matched >= r.count {
			return true
		}
	}
	return false
}

// TestAny advances matching and returns the index of a completed request,
// or -1 if none completed (MPI_Testany).
func TestAny(reqs ...*Request) int {
	for i, r := range reqs {
		if r.Test() {
			return i
		}
	}
	return -1
}
