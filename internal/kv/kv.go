// Package kv is a sharded key-value store built on the Notified Access
// primitives — the first *service* on the stack rather than a benchmark
// kernel. Each rank owns the hash shard of the key space that maps to it
// and exposes two collective windows:
//
//   - the table window: an open-addressed bucket array holding the
//     shard's live entries. Clients read it with plain async RMA gets —
//     a lookup is one bucket-sized read from the owner, no server cycles
//     spent. Remote reads and the owner's CommitLocal writes both run
//     under the region lock, so a get observes each slot write entirely
//     or not at all.
//   - the log window: per-client lanes of fixed-size record slots.
//     A put/delete/batch is ONE notified put landing a record in the
//     caller's lane; the owner's active-message handler (registered on
//     the record class) applies it to the table and chains a zero-byte
//     ack notification back. Mutations cost the client no round trip
//     beyond the ack it can drain lazily.
//
// Flow control is a per-(client, owner) credit window of LaneSlots
// records: a client never has more than LaneSlots unacked records at one
// owner, so lane slots are reused only after the owner confirmed the
// apply and the AM dispatch queue (sized to the worst-case burst) can
// never shed. Acks for one owner arrive in lane order — the handler is
// single-worker and the fabric delivers per-pair FIFO — so the k-th ack
// from an owner completes the k-th record sent there.
//
// The package runs unmodified on all four engines (Sim, Real, TCP, shm):
// it only speaks fompi, and self-targeted operations take the same NIC
// path as remote ones.
package kv

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/fompi"
)

// Tag classes on the log window: records dispatch to the owner's AM
// handler, acks feed the client's persistent counting requests.
const (
	tagRecord = 10
	tagAck    = 11
)

// Record op kinds.
const (
	opPut = 1
	opDel = 2
)

// Slot states in the table window.
const (
	slotFree = 0
	slotLive = 1
)

const slotHdr = 8   // state u8 | keyLen u8 | valLen u16 | keyHash u32
const recHdr = 4    // count u8 | pad u8 | bodyLen u16
const recOpHdr = 4  // kind u8 | keyLen u8 | valLen u16

// Options sizes the store. Zero values select the defaults.
type Options struct {
	// Buckets is the number of hash buckets per shard (default 128).
	Buckets int
	// SlotsPerBucket is the bucket's fixed slot count (default 4); a put
	// into a bucket with no free slot and no matching key is dropped and
	// counted (Stats.FullDrops).
	SlotsPerBucket int
	// SlotBytes is the fixed slot size (default 128); slotHdr bytes of
	// header, then key then value. Puts with keyLen+valLen+slotHdr >
	// SlotBytes are rejected client-side.
	SlotBytes int
	// LaneSlots is the per-(client,owner) credit window in records
	// (default 16).
	LaneSlots int
	// RecordBytes is the fixed log-record size (default 256) and thus the
	// batch capacity of one multi-put record.
	RecordBytes int
	// Queue overrides the AM dispatch queue bound (default: worst-case
	// burst N*LaneSlots plus slack, so credit flow control guarantees no
	// sheds).
	Queue int
	// Replicate backs the table with a replicated window: every commit is
	// transparently forwarded to a buddy rank's mirror, so the shard
	// contents survive a rank death between checkpoints. The caller
	// drives the checkpoint/restore cycle through p.FT() — typically
	// Flush, then FT().Checkpoint(); and FT().Restore() after reopening
	// in a recovery generation. Lane (log) windows are not replicated:
	// their contents are transient protocol state.
	Replicate bool
}

func (o *Options) defaults(ranks int) {
	if o.Buckets <= 0 {
		o.Buckets = 128
	}
	if o.SlotsPerBucket <= 0 {
		o.SlotsPerBucket = 4
	}
	if o.SlotBytes <= 0 {
		o.SlotBytes = 128
	}
	if o.LaneSlots <= 0 {
		o.LaneSlots = 16
	}
	if o.RecordBytes <= 0 {
		o.RecordBytes = 256
	}
	if o.Queue <= 0 {
		o.Queue = ranks*o.LaneSlots + 16
	}
}

// Stats is one rank's store counter snapshot: the server side counts
// applies, the client side counts issued operations.
type Stats struct {
	// Server (shard owner) side.
	Applied   uint64 // puts applied to the table
	Deleted   uint64 // deletes applied
	Batches   uint64 // records dispatched (a batch of k ops is 1 record)
	FullDrops uint64 // puts dropped because the bucket had no slot
	BadRecord uint64 // malformed records ignored
	// Client side.
	Gets     uint64 // single-key lookups issued
	Puts     uint64 // puts/deletes issued (batched ops count individually)
	Records  uint64 // records sent
	AckWaits uint64 // times the client blocked on the credit window
}

// Store is one rank's handle on the sharded table: shard owner for the
// keys hashing to this rank, client for every shard. Open and Close are
// collective; the data-path methods are rank-local. A Store is not
// goroutine-safe — one rank drives it.
type Store struct {
	p      *fompi.Proc
	opt    Options
	rank   int
	n      int
	table  *fompi.Win
	rtable *fompi.RWin // non-nil iff Options.Replicate: table is its primary
	log    *fompi.Win
	reg    *fompi.HandlerReg

	// Client-side per-owner lane state: seq counts records sent, acked
	// counts acks consumed; seq-acked is the in-flight window. sendBuf
	// holds LaneSlots persistent record buffers per owner, reused only
	// after the ack freed the slot (zero-copy safe).
	seq     []uint64
	acked   []uint64
	ackReq  []*fompi.Request
	sendBuf [][][]byte

	// Server-side scratch (handler runs single-worker).
	bucketScratch []byte
	stats         Stats
	srvApplied    uint64
	srvDeleted    uint64
	srvBatches    uint64
	srvFullDrops  uint64
	srvBadRecord  uint64
}

// Open builds the store collectively: every rank allocates its table and
// log windows, registers the record handler, arms one persistent ack
// request per peer, and barriers so no record can arrive before its
// handler exists.
func Open(p *fompi.Proc, opt Options) *Store {
	opt.defaults(p.N())
	s := &Store{p: p, opt: opt, rank: p.Rank(), n: p.N()}
	tableSize := opt.Buckets * opt.SlotsPerBucket * opt.SlotBytes
	if opt.Replicate {
		s.rtable = p.WinAllocateReplicated(tableSize)
		s.table = s.rtable.Primary()
	} else {
		s.table = p.WinAllocate(tableSize)
	}
	s.log = p.WinAllocate(p.N() * opt.LaneSlots * opt.RecordBytes)
	s.bucketScratch = make([]byte, opt.SlotsPerBucket*opt.SlotBytes)
	s.seq = make([]uint64, s.n)
	s.acked = make([]uint64, s.n)
	s.ackReq = make([]*fompi.Request, s.n)
	s.sendBuf = make([][][]byte, s.n)
	for o := 0; o < s.n; o++ {
		s.ackReq[o] = s.log.NotifyInit(o, tagAck, 1)
		s.ackReq[o].Start()
		s.sendBuf[o] = make([][]byte, opt.LaneSlots)
		for i := range s.sendBuf[o] {
			s.sendBuf[o][i] = make([]byte, opt.RecordBytes)
		}
	}
	// Workers:1 keeps applies serialized in lane order — the ordering the
	// ack protocol and the deterministic soak rely on. The queue is sized
	// so the credit window can never overflow it.
	s.reg = s.log.RegisterHandlerCfg(tagRecord, s.apply, fompi.AMConfig{Workers: 1, Queue: opt.Queue})
	p.Barrier()
	return s
}

// Close drains the client side, quiesces the handlers, and frees the
// windows. Collective.
func (s *Store) Close() {
	s.Flush()
	s.p.Barrier() // every rank drained: no record or ack still in flight
	s.p.FlushHandlers()
	s.reg.Unregister()
	for _, r := range s.ackReq {
		r.Free()
	}
	if s.rtable != nil {
		s.rtable.Free()
	} else {
		s.table.Free()
	}
	s.log.Free()
	s.p.JoinAMWorkers()
}

// hashKey is FNV-1a 32; the low bits shard across ranks, the rest picks
// the bucket, and the full value is stored in the slot header to cheapen
// scans.
func hashKey(key []byte) uint32 {
	h := fnv.New32a()
	h.Write(key)
	v := h.Sum32()
	if v == 0 {
		v = 1
	}
	return v
}

// Owner returns the rank owning key's shard.
func (s *Store) Owner(key []byte) int { return int(hashKey(key)) % s.n }

func (s *Store) bucketIndex(h uint32) int {
	return int(h/uint32(s.n)) % s.opt.Buckets
}

func (s *Store) bucketOff(b int) int { return b * s.opt.SlotsPerBucket * s.opt.SlotBytes }

func (s *Store) laneOff(slot int) int {
	return (s.rank*s.opt.LaneSlots + slot) * s.opt.RecordBytes
}

// maxEntry returns the largest keyLen+valLen a slot can hold.
func (s *Store) maxEntry() int { return s.opt.SlotBytes - slotHdr }

// ---------------------------------------------------------------------------
// Client side: gets
// ---------------------------------------------------------------------------

// GetFuture is an in-flight lookup: one async RMA bucket read plus the
// key to resolve inside it once the data lands.
type GetFuture struct {
	s   *Store
	key []byte
	h   uint32
	buf []byte
	get *fompi.GetHandle
}

// GetAsync starts a lookup: one bucket-sized RMA read from the owner.
func (s *Store) GetAsync(key []byte) *GetFuture {
	s.stats.Gets++
	h := hashKey(key)
	owner := int(h) % s.n
	f := &GetFuture{s: s, key: append([]byte(nil), key...), h: h,
		buf: make([]byte, s.opt.SlotsPerBucket*s.opt.SlotBytes)}
	f.get = s.table.IGet(owner, s.bucketOff(s.bucketIndex(h)), f.buf)
	return f
}

// Done polls for the bucket read having landed.
func (f *GetFuture) Done() bool { return f.get.Done() }

// Await blocks for the read and resolves the key inside the bucket.
// The returned slice is the future's own copy.
func (f *GetFuture) Await() ([]byte, bool) {
	f.get.Await()
	return scanBucket(f.s.opt, f.buf, f.h, f.key)
}

// Get is the blocking single-key lookup.
func (s *Store) Get(key []byte) ([]byte, bool) {
	return s.GetAsync(key).Await()
}

// MGet resolves many keys: all bucket reads are issued before any is
// awaited, so the latencies overlap. Missing keys yield nil.
func (s *Store) MGet(keys [][]byte) [][]byte {
	futs := make([]*GetFuture, len(keys))
	for i, k := range keys {
		futs[i] = s.GetAsync(k)
	}
	out := make([][]byte, len(keys))
	for i, f := range futs {
		v, ok := f.Await()
		if ok {
			out[i] = v
		}
	}
	return out
}

// scanBucket resolves key inside a bucket image read from the owner.
func scanBucket(opt Options, bucket []byte, h uint32, key []byte) ([]byte, bool) {
	for i := 0; i < opt.SlotsPerBucket; i++ {
		slot := bucket[i*opt.SlotBytes : (i+1)*opt.SlotBytes]
		if slot[0] != slotLive {
			continue
		}
		if binary.LittleEndian.Uint32(slot[4:8]) != h {
			continue
		}
		kl := int(slot[1])
		if kl != len(key) || string(slot[slotHdr:slotHdr+kl]) != string(key) {
			continue
		}
		vl := int(binary.LittleEndian.Uint16(slot[2:4]))
		return append([]byte(nil), slot[slotHdr+kl:slotHdr+kl+vl]...), true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Client side: puts
// ---------------------------------------------------------------------------

// PutAsync sends key=val to its owner as one notified-put record and
// returns (owner, seq): the put is applied once Acked(owner) > seq. It
// blocks only when the owner's credit window is exhausted.
func (s *Store) PutAsync(key, val []byte) (owner int, seq uint64) {
	return s.sendOps(key, [][2][]byte{{key, val}}, opPut)
}

// Put is the acked put: it returns after the owner applied the record.
func (s *Store) Put(key, val []byte) {
	owner, seq := s.PutAsync(key, val)
	for s.acked[owner] <= seq {
		s.awaitAck(owner)
	}
}

// Del removes key (acked).
func (s *Store) Del(key []byte) {
	owner, seq := s.sendOps(key, [][2][]byte{{key, nil}}, opDel)
	for s.acked[owner] <= seq {
		s.awaitAck(owner)
	}
}

// KV is one multi-put pair.
type KV struct {
	Key, Val []byte
}

// MPut applies many puts: pairs are grouped by owner, packed into batch
// records (one active message applies a whole sub-batch at the owner),
// and all acks are awaited before return. Per-owner application order
// follows the order of pairs.
func (s *Store) MPut(pairs []KV) {
	byOwner := make(map[int][][2][]byte)
	for _, kv := range pairs {
		o := s.Owner(kv.Key)
		byOwner[o] = append(byOwner[o], [2][]byte{kv.Key, kv.Val})
	}
	want := make(map[int]uint64)
	for o, ops := range byOwner {
		// Pack greedily up to the record capacity.
		for len(ops) > 0 {
			n := s.packLimit(ops)
			_, seq := s.sendOpsTo(o, ops[:n], opPut)
			want[o] = seq + 1
			ops = ops[n:]
		}
	}
	for o, w := range want {
		for s.acked[o] < w {
			s.awaitAck(o)
		}
	}
}

// packLimit returns how many leading ops fit in one record.
func (s *Store) packLimit(ops [][2][]byte) int {
	body := 0
	for i, op := range ops {
		need := recOpHdr + len(op[0]) + len(op[1])
		if i > 0 && (recHdr+body+need > s.opt.RecordBytes || i >= 255) {
			return i
		}
		body += need
	}
	return len(ops)
}

// sendOps routes single-key ops by the first key's owner.
func (s *Store) sendOps(key []byte, ops [][2][]byte, kind byte) (int, uint64) {
	return s.sendOpsTo(s.Owner(key), ops, kind)
}

// sendOpsTo encodes ops into the next lane slot for owner and sends the
// record as one notified put. Returns the record's sequence number.
func (s *Store) sendOpsTo(owner int, ops [][2][]byte, kind byte) (int, uint64) {
	for s.seq[owner]-s.acked[owner] >= uint64(s.opt.LaneSlots) {
		s.stats.AckWaits++
		s.awaitAck(owner)
	}
	seq := s.seq[owner]
	s.seq[owner]++
	slot := int(seq % uint64(s.opt.LaneSlots))
	rec := s.sendBuf[owner][slot]
	body := 0
	count := 0
	for _, op := range ops {
		k, v := op[0], op[1]
		if len(k) == 0 || len(k) > 255 || len(k)+len(v) > s.maxEntry() {
			panic(fmt.Sprintf("kv: entry too large or empty key (keyLen=%d valLen=%d, max entry %d)",
				len(k), len(v), s.maxEntry()))
		}
		off := recHdr + body
		if off+recOpHdr+len(k)+len(v) > s.opt.RecordBytes || count >= 255 {
			panic(fmt.Sprintf("kv: batch of %d ops overflows record (%d bytes)", len(ops), s.opt.RecordBytes))
		}
		rec[off] = kind
		rec[off+1] = byte(len(k))
		binary.LittleEndian.PutUint16(rec[off+2:off+4], uint16(len(v)))
		copy(rec[off+recOpHdr:], k)
		copy(rec[off+recOpHdr+len(k):], v)
		body += recOpHdr + len(k) + len(v)
		count++
		s.stats.Puts++
	}
	rec[0] = byte(count)
	rec[1] = 0
	binary.LittleEndian.PutUint16(rec[2:4], uint16(body))
	s.stats.Records++
	s.log.PutNotify(owner, s.laneOff(slot), rec[:recHdr+body], tagRecord)
	return owner, seq
}

// awaitAck consumes one ack notification from owner (blocking) and
// re-arms the persistent request.
func (s *Store) awaitAck(owner int) {
	s.ackReq[owner].Wait()
	s.acked[owner]++
	s.ackReq[owner].Start()
}

// DrainAcks consumes every ack that already arrived, without blocking.
func (s *Store) DrainAcks() {
	for o := 0; o < s.n; o++ {
		for s.ackReq[o].Test() {
			s.acked[o]++
			s.ackReq[o].Start()
		}
	}
}

// Acked returns how many records owner has acked (completion watermark
// for PutAsync sequence numbers).
func (s *Store) Acked(owner int) uint64 { return s.acked[owner] }

// Flush blocks until every record this rank sent has been applied and
// acked.
func (s *Store) Flush() {
	for o := 0; o < s.n; o++ {
		for s.acked[o] < s.seq[o] {
			s.awaitAck(o)
		}
	}
}

// Stats snapshots the rank's counters (client side plus this shard's
// server side).
func (s *Store) Stats() Stats {
	st := s.stats
	st.Applied = s.srvApplied
	st.Deleted = s.srvDeleted
	st.Batches = s.srvBatches
	st.FullDrops = s.srvFullDrops
	st.BadRecord = s.srvBadRecord
	return st
}

// ---------------------------------------------------------------------------
// Server side: the active-message handler
// ---------------------------------------------------------------------------

// apply is the AM handler: it decodes the record deposited in the lane
// and applies each op to the table window, then chains the ack. It runs
// on the single AM worker (or in Sim kernel context), so it is the only
// writer of the table window; CommitLocal keeps each slot write atomic
// against concurrent remote bucket reads. The server-side counters are
// only written here and read by Stats after quiescence (Close/Flush
// +Barrier), so they need no lock.
func (s *Store) apply(m *fompi.AMsg) {
	rec := m.Data()
	if len(rec) < recHdr {
		s.srvBadRecord++
		return
	}
	count := int(rec[0])
	body := int(binary.LittleEndian.Uint16(rec[2:4]))
	if recHdr+body > len(rec) {
		s.srvBadRecord++
		return
	}
	s.srvBatches++
	off := recHdr
	for i := 0; i < count; i++ {
		if off+recOpHdr > recHdr+body {
			s.srvBadRecord++
			break
		}
		kind := rec[off]
		kl := int(rec[off+1])
		vl := int(binary.LittleEndian.Uint16(rec[off+2 : off+4]))
		if off+recOpHdr+kl+vl > recHdr+body {
			s.srvBadRecord++
			break
		}
		key := rec[off+recOpHdr : off+recOpHdr+kl]
		val := rec[off+recOpHdr+kl : off+recOpHdr+kl+vl]
		switch kind {
		case opPut:
			s.applyPut(key, val)
		case opDel:
			s.applyDel(key)
		default:
			s.srvBadRecord++
		}
		off += recOpHdr + kl + vl
	}
	// The ack releases the lane slot at the client: chain it only after
	// every op of the record hit the table.
	s.log.ChainPutNotify(m.Source, 0, nil, tagAck)
}

// commitTable is the single table write path: under Replicate it routes
// through the replicated window so the buddy mirror stays coherent (safe
// from the record handler's context — the mirror forward is a chained
// notified put).
func (s *Store) commitTable(off int, data []byte) {
	if s.rtable != nil {
		s.rtable.CommitLocal(off, data)
		return
	}
	s.table.CommitLocal(off, data)
}

// applyPut upserts one entry: matching-key slot if present, else the
// bucket's first free slot; a full bucket drops the put (counted).
func (s *Store) applyPut(key, val []byte) {
	h := hashKey(key)
	b := s.bucketIndex(h)
	base := s.bucketOff(b)
	s.table.ReadLocal(base, s.bucketScratch)
	target := -1
	for i := 0; i < s.opt.SlotsPerBucket; i++ {
		slot := s.bucketScratch[i*s.opt.SlotBytes : (i+1)*s.opt.SlotBytes]
		if slot[0] != slotLive {
			if target < 0 {
				target = i
			}
			continue
		}
		if binary.LittleEndian.Uint32(slot[4:8]) == h && int(slot[1]) == len(key) &&
			string(slot[slotHdr:slotHdr+len(key)]) == string(key) {
			target = i
			break
		}
	}
	if target < 0 {
		s.srvFullDrops++
		return
	}
	slot := s.bucketScratch[target*s.opt.SlotBytes : (target+1)*s.opt.SlotBytes]
	for i := range slot {
		slot[i] = 0
	}
	slot[0] = slotLive
	slot[1] = byte(len(key))
	binary.LittleEndian.PutUint16(slot[2:4], uint16(len(val)))
	binary.LittleEndian.PutUint32(slot[4:8], h)
	copy(slot[slotHdr:], key)
	copy(slot[slotHdr+len(key):], val)
	s.commitTable(base+target*s.opt.SlotBytes, slot)
	s.srvApplied++
}

// applyDel frees the entry's slot (a one-byte state commit).
func (s *Store) applyDel(key []byte) {
	h := hashKey(key)
	base := s.bucketOff(s.bucketIndex(h))
	s.table.ReadLocal(base, s.bucketScratch)
	for i := 0; i < s.opt.SlotsPerBucket; i++ {
		slot := s.bucketScratch[i*s.opt.SlotBytes : (i+1)*s.opt.SlotBytes]
		if slot[0] != slotLive {
			continue
		}
		if binary.LittleEndian.Uint32(slot[4:8]) == h && int(slot[1]) == len(key) &&
			string(slot[slotHdr:slotHdr+len(key)]) == string(key) {
			s.commitTable(base+i*s.opt.SlotBytes, []byte{slotFree})
			s.srvDeleted++
			return
		}
	}
}
