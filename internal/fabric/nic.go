package fabric

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/match"
)

// OpKind classifies remote operations as seen in completion-queue entries.
type OpKind int

const (
	// OpPut is a remote write.
	OpPut OpKind = iota
	// OpGet is a remote read.
	OpGet
	// OpAtomic is a remote atomic (fetch-add / compare-and-swap).
	OpAtomic
	// OpAccum is a remote element-wise accumulate.
	OpAccum
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpAtomic:
		return "atomic"
	case OpAccum:
		return "accum"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Imm is an optional 4-byte immediate attached to a remote operation and
// surfaced in the target's destination completion queue — the uGNI feature
// Notified Access is built on.
type Imm struct {
	Valid bool
	Val   uint32
}

// WithImm constructs a valid immediate.
func WithImm(v uint32) Imm { return Imm{Valid: true, Val: v} }

// CQE is a destination completion queue entry: the record that a remote
// operation with an immediate committed against local memory.
type CQE struct {
	Origin   int    // originating rank (known to the NIC hardware)
	Imm      uint32 // the 4-byte immediate
	Kind     OpKind
	RegionID int
	Offset   int
	Len      int
}

// NotifySink receives destination notifications for one registered region
// at delivery time, instead of the region's consumer draining the shared
// destination CQ. A sink's Deliver is invoked outside the NIC lock: under
// Sim in kernel context at the packet's arrival time, under Real on a
// receive worker goroutine — it must not block in either case. Under the
// Real engine deliveries from different origins run on different workers,
// so Deliver must be safe for concurrent calls.
type NotifySink interface {
	Deliver(cqe CQE)
}

// Msg is a small control or data message delivered to the NIC's message
// queue — the stand-in for FMA writes into per-rank mailbox rings. The
// message-passing and RMA-synchronization layers build their protocols on
// these.
type Msg struct {
	Origin  int
	Class   int    // layer discriminator (each layer picks distinct classes)
	Payload any    // layer-specific header
	Data    []byte // optional payload bytes
	// ChargeCopy tells the receiver the bytes landed in a bounce buffer and
	// the copy into the user buffer must be charged (eager protocol); when
	// false the bytes were RDMA-written straight to their destination
	// (rendezvous) and the receive-side copy is free in modeled time.
	ChargeCopy bool
}

// msgHeaderBytes is the modeled wire size of a message header.
const msgHeaderBytes = 16

// AtomicOp selects the remote atomic operation.
type AtomicOp int

const (
	// AtomicFetchAdd atomically adds the operand to the target uint64 and
	// returns the previous value.
	AtomicFetchAdd AtomicOp = iota
	// AtomicCAS compares the target uint64 with Compare and, if equal,
	// stores the operand; the previous value is returned either way.
	AtomicCAS
)

// AccumOp selects the element-wise accumulate operation (float64 elements).
type AccumOp int

const (
	// AccumSum adds element-wise.
	AccumSum AccumOp = iota
	// AccumReplace overwrites (MPI_REPLACE).
	AccumReplace
)

type pktKind int

const (
	pktPut pktKind = iota
	pktGetReq
	pktGetResp
	pktAtomic
	pktAccum
	pktAck
	pktCtrl
	pktData
	pktNotify // deferred get notification (unreliable-network protocol)

	// Link-layer control for the reliable-delivery layer. These are
	// unsequenced, uncounted in Fabric.Stats, and never reach deliverNow.
	pktLinkAck  // cumulative ack: operand = highest contiguously received seq
	pktLinkNack // gap report: operand = first missing seq (acks everything below)
)

func (k pktKind) String() string {
	switch k {
	case pktPut:
		return "put"
	case pktGetReq:
		return "get-req"
	case pktGetResp:
		return "get-resp"
	case pktAtomic:
		return "atomic"
	case pktAccum:
		return "accum"
	case pktAck:
		return "ack"
	case pktCtrl:
		return "ctrl"
	case pktData:
		return "data"
	case pktNotify:
		return "notify"
	case pktLinkAck:
		return "link-ack"
	case pktLinkNack:
		return "link-nack"
	}
	return "unknown"
}

type packet struct {
	kind           pktKind
	origin, target int
	regionID       int
	offset         int
	data           []byte
	pooled         bool // data came from the fabric's buffer pool; recycle at commit
	// free releases a payload borrowed from the link's receive buffers (a
	// segment-ring bulk span): called exactly once when the fabric is done
	// reading data — commit, handover copy, or discard. Mutually exclusive
	// with pooled.
	free           func()
	dstDirect      bool // getResp: payload already committed straight into op.dst (zero-copy)
	imm            Imm
	wireSize       int
	inlineEligible bool
	notifyBack     bool  // getResp: origin must send a pktNotify back
	extraDelay     int64 // ns added before the packet departs (target CPU/NIC processing)

	op *Op // origin-side handle, echoed back on acks/responses

	// opID is the wire identity of op for the distributed fabric: pointers
	// cannot cross a process boundary, so the origin registers the op under
	// this ID and the target echoes it back on acks and get responses.
	// Assigned once per op (stable across retransmission clones); zero on
	// single-process fabrics and on packets that carry no op.
	opID uint64

	aop              AtomicOp
	operand, compare uint64
	accOp            AccumOp

	msg *Msg

	// Reliable-delivery layer fields (zero unless the layer is active).
	rel  bool   // sequenced packet: ingress runs dedup/reorder before deliverNow
	seq  uint64 // per-(origin,target) sequence number, starting at 1
	csum uint32 // CRC-32 over the payload bytes (data + msg data)
	// Piggybacked cumulative ack for the reverse direction (ack coalescing:
	// a data packet carries the link ack a standalone pktLinkAck would).
	ack      uint64
	ackValid bool
}

// Op is the origin-side handle of an outstanding remote operation. Done
// becomes true at *remote* completion (data committed at the target, get
// data landed locally, atomic result returned), which is what Flush waits
// for.
type Op struct {
	nic      *NIC
	target   int
	kind     OpKind
	dst      []byte // get destination
	done     bool
	detached bool // fire-and-forget: recycle into the NIC's op freelist at completion
	result   uint64
	err      error // peer-failure completion (reliability layer)
	netID    uint64 // wire identity (distributed fabric); 0 = unregistered
}

// Done reports whether the operation is remotely complete.
func (o *Op) Done() bool {
	o.nic.mu.Lock()
	defer o.nic.mu.Unlock()
	return o.done
}

// Await parks p until the operation is remotely complete.
func (o *Op) Await(p *exec.Proc) {
	n := o.nic
	n.mu.Lock()
	for !o.done {
		n.opAwaitWaiters++
		n.opGate.Wait(p)
		n.opAwaitWaiters--
	}
	n.mu.Unlock()
}

// Err returns the operation's failure, if any: non-nil (unwrapping to
// ErrPeerFailed) when the peer-failure detector completed the op because
// its target was declared dead. Valid once Done/Await report completion.
func (o *Op) Err() error {
	o.nic.mu.Lock()
	defer o.nic.mu.Unlock()
	return o.err
}

// Result returns the fetched value of a completed atomic. It panics if the
// operation has not completed.
func (o *Op) Result() uint64 {
	o.nic.mu.Lock()
	defer o.nic.mu.Unlock()
	if !o.done {
		panic("fabric: Result on incomplete op")
	}
	return o.result
}

// Detach declares the caller will never touch this handle again (no Done,
// Await, or Result), letting the NIC recycle it into its op freelist at
// remote completion. Fire-and-forget posting paths (put streams completed
// by Flush, blocking helpers that already consumed the result) use it to
// keep the steady-state hot path allocation-free.
func (o *Op) Detach() {
	n := o.nic
	n.mu.Lock()
	if o.done {
		n.recycleOpLocked(o)
	} else {
		o.detached = true
	}
	n.mu.Unlock()
}

// MemRegion is a registered memory region remotely accessible by its ID.
// Each region carries its own read-write lock guarding the backing bytes,
// so payload commits to different regions never serialize on the NIC-wide
// lock (lock order: NIC.mu, then regMu, then MemRegion.mu — payload paths
// that need no queue state take only the region lock).
type MemRegion struct {
	ID  int
	nic *NIC
	buf []byte
	mu  sync.RWMutex
}

// Bytes returns the region's backing memory. The owner may access it
// directly, subject to the usual RMA synchronization rules.
func (r *MemRegion) Bytes() []byte { return r.buf }

// Len returns the region size in bytes.
func (r *MemRegion) Len() int { return len(r.buf) }

// lockW acquires the region write lock, counting contended acquisitions.
func (r *MemRegion) lockW() {
	if !r.mu.TryLock() {
		r.nic.regionContention.Add(1)
		r.mu.Lock()
	}
}

// lockR acquires the region read lock, counting contended acquisitions.
func (r *MemRegion) lockR() {
	if !r.mu.TryRLock() {
		r.nic.regionContention.Add(1)
		r.mu.RLock()
	}
}

// commit copies data into the region at off under the region write lock.
func (r *MemRegion) commit(off int, data []byte) {
	r.lockW()
	copy(r.buf[off:], data)
	r.mu.Unlock()
}

// readInto copies length bytes at off into dst under the region read lock,
// so concurrent gets against one region proceed in parallel.
func (r *MemRegion) readInto(off int, dst []byte) {
	r.lockR()
	copy(dst, r.buf[off:])
	r.mu.RUnlock()
}

// CommitLocal copies data into the region at off under the region write
// lock — the owner-side analog of a remote put commit. A local writer
// (e.g. an active-message handler updating served state) that uses it is
// race-safe against concurrent remote gets and puts to the region, and
// each call is atomic with respect to any single remote read: a get never
// observes a torn entry.
func (r *MemRegion) CommitLocal(off int, data []byte) {
	if off < 0 || off+len(data) > len(r.buf) {
		panic(fmt.Sprintf("fabric: CommitLocal [%d,%d) outside region of %d bytes", off, off+len(data), len(r.buf)))
	}
	r.commit(off, data)
}

// ReadLocal copies len(dst) bytes at off into dst under the region read
// lock — the owner-side analog of a remote get, race-safe against
// concurrent remote commits to the region.
func (r *MemRegion) ReadLocal(off int, dst []byte) {
	if off < 0 || off+len(dst) > len(r.buf) {
		panic(fmt.Sprintf("fabric: ReadLocal [%d,%d) outside region of %d bytes", off, off+len(dst), len(r.buf)))
	}
	r.readInto(off, dst)
}

// msgEntry stamps a queued message with its rank-wide arrival sequence so
// multi-class consumers can merge class FIFOs back into arrival order.
type msgEntry struct {
	m   *Msg
	seq uint64
}

// msgClassQ is one message class's bucket: its FIFO, its depth high-water
// mark, and the waiters currently parked on the class.
type msgClassQ struct {
	q         match.FIFO[msgEntry]
	highWater int
	waiters   []*msgWaiter
}

// msgWaiter parks one consumer on a set of classes. Each waiter owns a
// dedicated gate; an arrival broadcasts only the gates registered under
// its class.
type msgWaiter struct {
	gate    exec.Gate
	ready   bool
	classes []int
}

// rxQueueDepth is the per-origin receive queue capacity under the Real
// engine (per-origin lanes preserve the per-(origin,target) FIFO the
// protocols rely on while letting different origins deliver concurrently).
const rxQueueDepth = 1024

// opFreeCap bounds the NIC's recycled-op freelist.
const opFreeCap = 1024

// NIC is one rank's network endpoint.
type NIC struct {
	f    *Fabric
	rank int

	// regMu guards the region table only; the payload bytes of each region
	// are guarded by the region's own lock. The data plane therefore takes
	// a read lock for the table lookup and the region lock for the copy,
	// never the control-plane mu.
	regMu   sync.RWMutex
	regions []*MemRegion

	// regionContention counts region-lock acquisitions that found the lock
	// held (TryLock failed) — the sharded data plane's contention signal.
	regionContention atomic.Int64

	mu       sync.Mutex
	destCQ   match.FIFO[CQE]
	sinks    map[int]NotifySink // per-region delivery-time dispatch
	destGate exec.Gate
	opGate   exec.Gate
	opFree   []*Op // recycled detached op handles

	// Class-bucketed message dispatch engine: one FIFO per Msg.Class,
	// created on first use, plus a rank-wide arrival sequence so
	// multi-class consumers interleave buckets in arrival order. Waiters
	// register per class with dedicated gates, so an arrival wakes exactly
	// the consumers whose class set contains it — a barrier message never
	// wakes an MP receiver.
	msgQs         map[int]*msgClassQ
	msgSeq        uint64
	msgDepth      int
	msgHighWater  int
	msgWaiterPool []*msgWaiter

	outstanding []int // per-target ops awaiting remote completion
	totalOut    int
	// Waiter counts gating completeOp's opGate broadcast: awaiters need
	// every completion, flushers only care when an outstanding count
	// reaches zero. With both zero, completions stay silent.
	opAwaitWaiters int
	opFlushWaiters int

	destHighWater int
	ring          shmRing // intra-node notification ring (paper §IV-C)

	// rx holds one inbound lane per origin rank (Real engine): lane i
	// carries packets whose origin is rank i, drained by a dedicated
	// worker. Per-pair FIFO survives; different origins deliver in
	// parallel against the sharded data plane.
	//
	// Checker-audit note: rx, quit, rxWG and the realGate internals are the
	// only blocking primitives in this package that bypass exec.Gate, and
	// all of them are dead under the Sim engine (rx is nil, workers are
	// never spawned, lanePush takes the Schedule path). Every Sim-mode
	// blocking edge — op await/flush, destination CQ waits, class-bucket
	// message waits, reliability timers — parks through exec.Gate or
	// Env.Schedule, so the interleaving checker (internal/check) observes
	// the complete blocking/wake graph.
	rx   []chan *packet
	quit chan struct{}

	// Close drain barrier: closed gates new lane pushes, rxWG tracks the
	// receive workers so Close can wait for them to drain and exit.
	closed    atomic.Bool
	closeOnce sync.Once
	rxWG      sync.WaitGroup

	// Peer-failure state (distributed fabrics: the reliability layer or a
	// lossless link whose mesh detects dead peers; all nil/false elsewhere).
	// peerErr[r] is the failure recorded against rank r; relPending[r]
	// holds this NIC's ops outstanding to r so a failure declaration can
	// complete them with the error (guarded by mu, lazily allocated).
	peerErr       []error
	anyPeerFailed bool
	relPending    []map[*Op]struct{}
}

func newNIC(f *Fabric, rank int) *NIC {
	n := &NIC{
		f:           f,
		rank:        rank,
		outstanding: make([]int, f.cfg.Ranks),
		quit:        make(chan struct{}),
	}
	n.destGate = f.env.NewGate(&n.mu)
	n.opGate = f.env.NewGate(&n.mu)
	if f.env.Mode().Wallclock() {
		n.rx = make([]chan *packet, f.cfg.Ranks)
		for i := range n.rx {
			n.rx[i] = make(chan *packet, rxQueueDepth)
		}
	}
	return n
}

// Rank returns the owning rank.
func (n *NIC) Rank() int { return n.rank }

// startRxWorkers launches one receive worker per origin lane (Real engine).
// On shutdown each worker drains and discards whatever is still queued in
// its lane before signalling the Close barrier, so pooled payloads stranded
// in flight return to the pool instead of leaking.
func (n *NIC) startRxWorkers() {
	var abort <-chan struct{}
	re := exec.RealOf(n.f.env)
	if re != nil {
		abort = re.Aborted()
	}
	n.rxWG.Add(len(n.rx))
	for _, ch := range n.rx {
		ch := ch
		go func() {
			defer n.rxWG.Done()
			for {
				select {
				case pkt := <-ch:
					n.deliverGuarded(re, pkt)
				case <-abort:
					n.drainLane(ch)
					return
				case <-n.quit:
					n.drainLane(ch)
					return
				}
			}
		}()
	}
}

// drainLane discards everything queued in one receive lane at shutdown.
func (n *NIC) drainLane(ch chan *packet) {
	for {
		select {
		case pkt := <-ch:
			n.f.discardPacket(pkt)
		default:
			return
		}
	}
}

// deliverGuarded converts delivery-time panics into a run abort under the
// Real engine instead of crashing the process. Abort-sentinel unwinds
// (exec.RealEnv.AbortUnwind from a blocked transmit) pass through silently:
// the run already holds its first error.
func (n *NIC) deliverGuarded(re *exec.RealEnv, pkt *packet) {
	defer func() {
		if r := recover(); r != nil && !exec.IsAbortPanic(r) && re != nil {
			if err, ok := r.(error); ok {
				// %w so errors.Is(runErr, ErrPeerFailed) survives the
				// panic-to-run-error conversion.
				re.Fail(fmt.Errorf("rank %d delivery panicked: %w", n.rank, err))
			} else {
				re.Fail(fmt.Errorf("rank %d delivery panicked: %v", n.rank, r))
			}
		}
	}()
	n.deliver(pkt)
}

// Close shuts down the NIC's receive workers (Real engine) and waits for
// them to drain their lanes and exit: after Close returns no worker
// touches NIC state, no packet sits undiscarded in a lane, and senders
// racing the shutdown have their packets discarded rather than wedged (a
// full lane's blocked sender is released by the quit channel).
func (n *NIC) Close() {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		close(n.quit)
		n.rxWG.Wait()
		// Workers are gone; sweep anything that raced past the closed
		// check into a lane after its worker drained.
		for _, ch := range n.rx {
			n.drainLane(ch)
		}
	})
}

// Close stops all receive workers. Only needed under the Real engine. On a
// distributed fabric only the local rank's NIC exists; the link itself is
// owned and closed by the layer that built it (internal/runtime).
func (f *Fabric) Close() {
	if f.rel != nil {
		f.rel.close()
	}
	for _, n := range f.nics {
		if n != nil {
			n.Close()
		}
	}
}

// Register exposes buf for remote access and returns its region handle.
// Registration order must match across ranks when the layers above rely on
// symmetric region IDs (as MPI window allocation does).
func (n *NIC) Register(buf []byte) *MemRegion {
	n.regMu.Lock()
	r := &MemRegion{ID: len(n.regions), nic: n, buf: buf}
	n.regions = append(n.regions, r)
	n.regMu.Unlock()
	n.f.netAnnounceRegion(r.ID, len(buf), true)
	return r
}

// Deregister revokes remote access to the region. The ID is not reused.
func (n *NIC) Deregister(r *MemRegion) {
	n.regMu.Lock()
	if r.ID < len(n.regions) && n.regions[r.ID] == r {
		n.regions[r.ID] = nil
	}
	n.regMu.Unlock()
	n.f.netAnnounceRegion(r.ID, 0, false)
}

func (n *NIC) region(id int) *MemRegion {
	n.regMu.RLock()
	defer n.regMu.RUnlock()
	if id < 0 || id >= len(n.regions) || n.regions[id] == nil {
		panic(fmt.Sprintf("fabric: rank %d: access to unregistered region %d", n.rank, id))
	}
	return n.regions[id]
}

// regionOrNil is the tolerant lookup used when draining stale ring entries
// whose region may have been deregistered.
func (n *NIC) regionOrNil(id int) *MemRegion {
	n.regMu.RLock()
	defer n.regMu.RUnlock()
	if id < 0 || id >= len(n.regions) {
		return nil
	}
	return n.regions[id]
}

func (n *NIC) checkTarget(target int) {
	if target < 0 || target >= n.f.cfg.Ranks {
		panic(fmt.Sprintf("fabric: rank %d: invalid target rank %d", n.rank, target))
	}
}

func (n *NIC) beginOp(target int, kind OpKind) *Op {
	n.mu.Lock()
	var op *Op
	if k := len(n.opFree); k > 0 {
		op = n.opFree[k-1]
		n.opFree[k-1] = nil
		n.opFree = n.opFree[:k-1]
	} else {
		op = &Op{}
	}
	op.nic, op.target, op.kind = n, target, kind
	op.dst, op.done, op.detached, op.result = nil, false, false, 0
	op.err = nil
	op.netID = 0
	n.outstanding[target]++
	n.totalOut++
	if n.f.rel != nil || n.f.link != nil {
		if n.relPending == nil {
			n.relPending = make([]map[*Op]struct{}, n.f.cfg.Ranks)
		}
		m := n.relPending[target]
		if m == nil {
			m = make(map[*Op]struct{})
			n.relPending[target] = m
		}
		m[op] = struct{}{}
	}
	if n.anyPeerFailed && n.peerErr[target] != nil {
		// The target was already declared dead: the declaration's sweep ran
		// before this op existed, so complete it here — otherwise a lossless
		// link (shm rings) would park its awaiter forever.
		n.failOpLocked(op, n.peerErr[target])
	}
	n.mu.Unlock()
	return op
}

// recycleOpLocked returns a finished, detached op to the freelist.
func (n *NIC) recycleOpLocked(op *Op) {
	if len(n.opFree) < opFreeCap {
		op.dst = nil
		n.opFree = append(n.opFree, op)
	}
}

func (n *NIC) completeOp(op *Op, result uint64) {
	n.mu.Lock()
	if op.done {
		// Already completed by the peer-failure detector; this is a late
		// ack that raced the declaration. The counters were adjusted then.
		n.mu.Unlock()
		return
	}
	op.done = true
	op.result = result
	n.outstanding[op.target]--
	n.totalOut--
	if n.relPending != nil {
		delete(n.relPending[op.target], op)
	}
	// Broadcast only when a waiter can observe this completion: Await
	// waiters re-check on every completion, Flush/FlushAll waiters only
	// when an outstanding count they watch hits zero. A completion with
	// nobody parked (the overwhelmingly common case on pipelined put
	// streams) stays silent instead of stampeding every sleeper.
	wake := n.opAwaitWaiters > 0 ||
		(n.opFlushWaiters > 0 && (n.outstanding[op.target] == 0 || n.totalOut == 0))
	netID := op.netID
	if op.detached {
		n.recycleOpLocked(op)
	}
	n.mu.Unlock()
	if netID != 0 {
		n.f.netForgetOp(netID)
	}
	if wake {
		n.opGate.Broadcast()
	}
}

// failOpLocked completes an op with a peer-failure error. Failed ops are
// never recycled even when detached: a late ack still in flight holds the
// pointer, and reuse would let it complete an unrelated op.
func (n *NIC) failOpLocked(op *Op, err error) {
	if op.done {
		return
	}
	op.done = true
	op.err = err
	n.outstanding[op.target]--
	n.totalOut--
	if n.relPending != nil {
		delete(n.relPending[op.target], op)
	}
}

// failOp completes an op with a peer-failure error and wakes its waiters.
func (n *NIC) failOp(op *Op, err error) {
	n.mu.Lock()
	n.failOpLocked(op, err)
	netID := op.netID
	wake := n.opAwaitWaiters > 0 || n.opFlushWaiters > 0
	n.mu.Unlock()
	if netID != 0 {
		n.f.netForgetOp(netID)
	}
	if wake {
		n.opGate.Broadcast()
	}
}

// notePeerFailure records a declared rank failure against this NIC: every
// pending op targeting the rank completes with the error, and every
// blocked waiter (op awaiters, flushers, destination pollers, message
// consumers) is woken so it can observe the failure instead of parking
// forever.
func (n *NIC) notePeerFailure(failed int, err error) {
	n.mu.Lock()
	if n.peerErr == nil {
		n.peerErr = make([]error, n.f.cfg.Ranks)
	}
	if n.peerErr[failed] != nil {
		n.mu.Unlock()
		return
	}
	n.peerErr[failed] = err
	n.anyPeerFailed = true
	if n.relPending != nil {
		for op := range n.relPending[failed] {
			n.failOpLocked(op, err)
		}
	}
	// Collect waiters in sorted class order, not map order: the broadcast
	// below assigns wake-event sequence numbers under Sim, and replayable
	// exploration (internal/check) requires the event order to be a pure
	// function of the schedule, never of map iteration.
	var wake []*msgWaiter
	classes := make([]int, 0, len(n.msgQs))
	for c := range n.msgQs {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		for _, w := range n.msgQs[c].waiters {
			if !w.ready {
				w.ready = true
				wake = append(wake, w)
			}
		}
	}
	n.mu.Unlock()
	n.opGate.Broadcast()
	n.destGate.Broadcast()
	for _, w := range wake {
		w.gate.Broadcast()
	}
}

// PeerError returns the failure recorded against rank, if any (non-nil
// errors unwrap to ErrPeerFailed). Layers with a precise dependency on
// one peer (e.g. a receive from a known source) poll this to fail fast.
func (n *NIC) PeerError(rank int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.peerErr == nil {
		return nil
	}
	return n.peerErr[rank]
}

// peerPanicLocked picks the failure to surface from a blocked wait.
func (n *NIC) peerPanicLocked() error {
	for _, err := range n.peerErr {
		if err != nil {
			return err
		}
	}
	return ErrPeerFailed
}

// Put writes data into (target, regionID, offset) and returns the origin
// handle. If imm is valid, a CQE carrying it appears in the target's
// destination completion queue once the data is committed — this is the
// primitive Notified Access builds on. p may be nil when called outside a
// rank (no overhead is charged then).
//
// The payload is staged in a pooled bounce buffer (recycled when the
// target commits it), except on the intra-node zero-copy fast path: above
// the BTE crossover under the Real engine the packet references data
// directly and the target copies source → region in a single copy (XPMEM
// single-copy semantics, paper §IV-C). Per MPI one-sided rules the caller
// must not modify data until the operation completes locally.
func (n *NIC) Put(p *exec.Proc, target, regionID, offset int, data []byte, imm Imm) *Op {
	n.checkTarget(target)
	n.f.chargeSend(p)
	var payload []byte
	pooled := false
	switch {
	case len(data) == 0:
		// Pure notification: nothing to stage.
	case n.f.zeroCopyEligible(n.rank, target, len(data)):
		payload = data
	case n.f.sendBorrowEligible(target):
		// The lossless link serializes the payload synchronously inside
		// transmit, so the packet can borrow the caller's buffer for the
		// duration of this call.
		payload = data
	default:
		payload = n.f.pool.get(len(data))
		copy(payload, data)
		pooled = true
	}
	op := n.beginOp(target, OpPut)
	pkt := newPacket()
	*pkt = packet{
		kind: pktPut, origin: n.rank, target: target,
		regionID: regionID, offset: offset, data: payload, pooled: pooled, imm: imm,
		wireSize: len(data), inlineEligible: imm.Valid, op: op,
	}
	n.f.transmit(pkt)
	return op
}

// Get reads len(dst) bytes from (target, regionID, offset) into dst. If imm
// is valid, a CQE appears in the *target's* destination completion queue as
// soon as the data has been read there (the notified-get semantics for
// reliable networks discussed in the paper §VIII).
func (n *NIC) Get(p *exec.Proc, target, regionID, offset int, dst []byte, imm Imm) *Op {
	n.checkTarget(target)
	n.f.chargeSend(p)
	op := n.beginOp(target, OpGet)
	op.dst = dst
	pkt := newPacket()
	*pkt = packet{
		kind: pktGetReq, origin: n.rank, target: target,
		regionID: regionID, offset: offset, imm: imm,
		wireSize: 0, op: op, operand: uint64(len(dst)),
	}
	n.f.transmit(pkt)
	if imm.Valid && n.f.cfg.GetNotifyMode == GetNotifyOriginOrdered {
		// InfiniBand-style protocol (paper §IV-A): no read-with-immediate,
		// so inject a notification write right behind the read request;
		// per-pair FIFO ordering guarantees it executes after the read at
		// the responder.
		note := newPacket()
		*note = packet{
			kind: pktNotify, origin: n.rank, target: target,
			regionID: regionID, offset: offset,
			imm: imm, wireSize: 0, operand: uint64(len(dst)),
		}
		n.f.transmit(note)
	}
	return op
}

// Atomic posts a remote atomic on the uint64 at (target, regionID, offset).
// For AtomicCAS, compare is the expected value and operand the replacement.
// The fetched previous value is available via Op.Result after completion.
// A valid imm notifies the target's destination CQ (notified accumulate).
func (n *NIC) Atomic(p *exec.Proc, target, regionID, offset int, aop AtomicOp, operand, compare uint64, imm Imm) *Op {
	n.checkTarget(target)
	n.f.chargeSend(p)
	op := n.beginOp(target, OpAtomic)
	pkt := newPacket()
	*pkt = packet{
		kind: pktAtomic, origin: n.rank, target: target,
		regionID: regionID, offset: offset, imm: imm,
		aop: aop, operand: operand, compare: compare,
		wireSize: 8, op: op,
	}
	n.f.transmit(pkt)
	return op
}

// Accumulate applies an element-wise float64 reduction of data into
// (target, regionID, offset) at the target, executed by the target NIC
// (no target CPU involvement). A valid imm notifies the destination CQ.
// Operands are encoded into a pooled buffer, recycled once applied.
func (n *NIC) Accumulate(p *exec.Proc, target, regionID, offset int, data []float64, aop AccumOp, imm Imm) *Op {
	n.checkTarget(target)
	n.f.chargeSend(p)
	raw := n.f.pool.get(8 * len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	op := n.beginOp(target, OpAccum)
	pkt := newPacket()
	*pkt = packet{
		kind: pktAccum, origin: n.rank, target: target,
		regionID: regionID, offset: offset, data: raw, pooled: true, imm: imm,
		accOp: aop, wireSize: len(raw), op: op,
	}
	n.f.transmit(pkt)
	return op
}

// PostMsg sends a small control/data message to target's message queue.
// Payload bytes are staged in a pooled buffer; the consuming layer should
// hand the buffer back via RecycleMsgData once it has copied the payload
// out (layers that retain Msg.Data simply leave it to the collector).
func (n *NIC) PostMsg(p *exec.Proc, target int, class int, payload any, data []byte, chargeCopy bool) {
	n.checkTarget(target)
	n.f.chargeSend(p)
	var cp []byte
	if len(data) > 0 {
		cp = n.f.pool.get(len(data))
		copy(cp, data)
	}
	m := &Msg{Origin: n.rank, Class: class, Payload: payload, Data: cp, ChargeCopy: chargeCopy}
	kind := pktCtrl
	if len(cp) > 0 {
		kind = pktData
	}
	pkt := newPacket()
	*pkt = packet{
		kind: kind, origin: n.rank, target: target,
		wireSize: msgHeaderBytes + len(cp), msg: m,
	}
	n.f.transmit(pkt)
}

// AcquireBuf returns a pooled staging buffer of the given length for a
// layer's own payload staging (e.g. the message-passing rendezvous copy).
// Hand it back with ReleaseBuf when done.
func (n *NIC) AcquireBuf(size int) []byte { return n.f.pool.get(size) }

// ReleaseBuf returns a buffer obtained from AcquireBuf (or a Msg payload)
// to the fabric's pool. The caller must not touch it afterwards.
func (n *NIC) ReleaseBuf(b []byte) { n.f.pool.put(b) }

// RecycleMsgData returns m's payload buffer to the pool and clears the
// reference. Consumers call it after copying the payload out; calling it
// at most once per message is the caller's responsibility.
func (n *NIC) RecycleMsgData(m *Msg) {
	if m.Data != nil {
		n.f.pool.put(m.Data)
		m.Data = nil
	}
}

// recycleData releases the packet's payload buffer: pooled copies return
// to the pool, borrowed link buffers are handed back to the link.
func (n *NIC) recycleData(pkt *packet) {
	if pkt.free != nil {
		pkt.free()
		pkt.free = nil
	} else if pkt.pooled {
		n.f.pool.put(pkt.data)
	}
	pkt.data, pkt.pooled = nil, false
}

// deliver routes an arriving packet: link-layer control and sequenced
// packets detour through the reliable-delivery layer (which invokes
// deliverNow for exactly the in-order prefix); everything else commits
// directly. On the lossless configuration this is a single nil check.
func (n *NIC) deliver(pkt *packet) {
	if rl := n.f.rel; rl != nil {
		switch {
		case pkt.kind == pktLinkAck || pkt.kind == pktLinkNack:
			rl.handleLinkCtl(pkt)
			return
		case pkt.rel:
			rl.ingress(n, pkt)
			return
		}
	}
	n.deliverNow(pkt)
}

// deliverNow commits an arriving packet against this NIC. Under Sim it
// runs in kernel context at the packet's arrival time; under Real it runs
// on the origin lane's receive worker, concurrently with other origins'
// workers — payload copies take only the target region's lock, queue
// state only the control-plane mu. The packet descriptor is recycled on
// return. Every side effect of a packet happens here, and the reliability
// layer guarantees at most one call per sequence number — the exactly-once
// half of the delivery argument.
func (n *NIC) deliverNow(pkt *packet) {
	switch pkt.kind {
	case pktPut:
		n.deliverPut(pkt)

	case pktGetReq:
		n.deliverGetReq(pkt)

	case pktGetResp:
		if pkt.op == nil {
			// Distributed fabric: the op this response answers is gone
			// (completed by the peer-failure path, or the response outlived
			// its rank). Nothing to commit into.
			n.recycleData(pkt)
			break
		}
		if !pkt.dstDirect {
			// The copy is unsynchronized: only this rank's lane touches
			// dst, and completeOp's mutex publishes it to the origin.
			copy(pkt.op.dst, pkt.data)
		}
		length := int(pkt.operand)
		n.recycleData(pkt)
		n.finishLocal(pkt.op, 0)
		if pkt.notifyBack {
			// Data arrived safely: release the target's buffer with a
			// dedicated notification message (the extra round trip of the
			// unreliable-network protocol).
			note := newPacket()
			*note = packet{
				kind: pktNotify, origin: n.rank, target: pkt.origin,
				regionID: pkt.regionID, offset: pkt.offset,
				imm: pkt.imm, wireSize: 0, operand: uint64(length),
			}
			n.f.transmit(note)
		}

	case pktAtomic:
		reg := n.region(pkt.regionID)
		if pkt.offset < 0 || pkt.offset+8 > len(reg.buf) {
			panic(fmt.Sprintf("fabric: rank %d: atomic out of bounds: region %d off %d", n.rank, pkt.regionID, pkt.offset))
		}
		reg.lockW()
		old := binary.LittleEndian.Uint64(reg.buf[pkt.offset:])
		switch pkt.aop {
		case AtomicFetchAdd:
			binary.LittleEndian.PutUint64(reg.buf[pkt.offset:], old+pkt.operand)
		case AtomicCAS:
			if old == pkt.compare {
				binary.LittleEndian.PutUint64(reg.buf[pkt.offset:], pkt.operand)
			}
		}
		reg.mu.Unlock()
		n.postCQE(pkt.origin, pkt.imm, pkt.regionID, pkt.offset, OpAtomic, 8)
		n.sendAck(pkt.op, pkt.opID, pkt.origin, old, int64(n.f.cfg.Model.TAtomic))

	case pktAccum:
		reg := n.region(pkt.regionID)
		if pkt.offset < 0 || pkt.offset+len(pkt.data) > len(reg.buf) {
			panic(fmt.Sprintf("fabric: rank %d: accumulate out of bounds: region %d off %d len %d",
				n.rank, pkt.regionID, pkt.offset, len(pkt.data)))
		}
		length := len(pkt.data)
		reg.lockW()
		for i := 0; i+8 <= len(pkt.data); i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(pkt.data[i:]))
			at := pkt.offset + i
			switch pkt.accOp {
			case AccumSum:
				cur := math.Float64frombits(binary.LittleEndian.Uint64(reg.buf[at:]))
				binary.LittleEndian.PutUint64(reg.buf[at:], math.Float64bits(cur+v))
			case AccumReplace:
				binary.LittleEndian.PutUint64(reg.buf[at:], math.Float64bits(v))
			}
		}
		reg.mu.Unlock()
		n.recycleData(pkt)
		n.postCQE(pkt.origin, pkt.imm, pkt.regionID, pkt.offset, OpAccum, length)
		n.sendAck(pkt.op, pkt.opID, pkt.origin, 0, int64(n.f.cfg.Model.TAtomic))

	case pktAck:
		if pkt.op != nil {
			n.finishLocal(pkt.op, pkt.operand)
		}

	case pktNotify:
		n.postCQE(pkt.origin, pkt.imm, pkt.regionID, pkt.offset, OpGet, int(pkt.operand))

	case pktCtrl, pktData:
		n.mu.Lock()
		wake := n.enqueueMsgLocked(pkt.msg)
		n.mu.Unlock()
		for _, w := range wake {
			w.gate.Broadcast()
		}
	}
	if tr := n.f.cfg.Trace; tr != nil {
		tr(TraceEvent{Kind: pkt.kind.String(), Origin: pkt.origin, Target: pkt.target,
			Bytes: pkt.wireSize, Imm: pkt.imm})
	}
	releasePacket(pkt)
}

// deliverPut commits an arriving put: payload copy under the region lock,
// notification dispatch under the control-plane mu.
func (n *NIC) deliverPut(pkt *packet) {
	reg := n.region(pkt.regionID)
	if pkt.offset < 0 || pkt.offset+len(pkt.data) > len(reg.buf) {
		panic(fmt.Sprintf("fabric: rank %d: put out of bounds: region %d off %d len %d (region len %d)",
			n.rank, pkt.regionID, pkt.offset, len(pkt.data), len(reg.buf)))
	}
	inline := pkt.imm.Valid && n.f.SameNode(pkt.origin, n.rank) &&
		len(pkt.data) <= n.f.cfg.InlineThreshold && len(pkt.data) > 0
	if inline {
		// Inline transfer (paper §IV-C): the payload rides inside the
		// notification ring entry; the consumer copies it into the
		// window when it processes the notification.
		n.mu.Lock()
		if sink := n.sinks[pkt.regionID]; sink != nil {
			// A sink owns this region: commit the inline payload now and
			// dispatch the notification directly, bypassing the ring.
			n.mu.Unlock()
			reg.commit(pkt.offset, pkt.data)
			length := len(pkt.data)
			sink.Deliver(CQE{Origin: pkt.origin, Imm: pkt.imm.Val, Kind: OpPut,
				RegionID: pkt.regionID, Offset: pkt.offset, Len: length})
			n.recycleData(pkt)
		} else {
			entryData, entryPooled := pkt.data, pkt.pooled
			if pkt.rel || pkt.free != nil {
				// The ring may outlive this packet's claim on the bytes:
				// under reliability the wire copy's payload belongs to the
				// origin (retained for retransmission, recycled at
				// link-ack), and a borrowed link buffer goes back to the
				// link at recycle. Either way the ring gets its own copy.
				entryData = n.f.pool.get(len(pkt.data))
				copy(entryData, pkt.data)
				entryPooled = true
			}
			n.ring.push(ringEntry{source: pkt.origin, imm: pkt.imm.Val, kind: OpPut,
				regionID: pkt.regionID, offset: pkt.offset, length: len(pkt.data),
				inline: entryData, pooled: entryPooled})
			switch {
			case pkt.free != nil:
				n.recycleData(pkt) // the ring took a copy; the borrow goes home
			case !pkt.rel:
				pkt.data, pkt.pooled = nil, false // the ring owns the buffer now
			}
			n.mu.Unlock()
			n.destGate.Broadcast()
		}
	} else {
		reg.commit(pkt.offset, pkt.data)
		length := len(pkt.data)
		n.recycleData(pkt)
		n.postCQE(pkt.origin, pkt.imm, pkt.regionID, pkt.offset, OpPut, length)
	}
	n.sendAck(pkt.op, pkt.opID, pkt.origin, 0, 0)
}

// deliverGetReq serves a get at the data holder. The reply buffer is taken
// from the pool *before* any lock is acquired; on the intra-node zero-copy
// path the payload is copied straight from the source region into the
// origin's destination buffer instead (single copy, no bounce buffer).
func (n *NIC) deliverGetReq(pkt *packet) {
	reg := n.region(pkt.regionID)
	length := int(pkt.operand)
	if pkt.offset < 0 || pkt.offset+length > len(reg.buf) {
		panic(fmt.Sprintf("fabric: rank %d: get out of bounds: region %d off %d len %d (region len %d)",
			n.rank, pkt.regionID, pkt.offset, length, len(reg.buf)))
	}
	resp := newPacket()
	*resp = packet{
		kind: pktGetResp, origin: n.rank, target: pkt.origin,
		wireSize: length, op: pkt.op, opID: pkt.opID, operand: uint64(length),
	}
	if n.f.zeroCopyEligible(n.rank, pkt.origin, length) {
		// The origin may not touch dst until the op completes, so the
		// region-to-destination copy is safe here at the data holder.
		reg.readInto(pkt.offset, pkt.op.dst[:length])
		resp.dstDirect = true
	} else {
		data := n.f.pool.get(length) // pooled before any lock
		reg.readInto(pkt.offset, data)
		resp.data, resp.pooled = data, true
	}
	if pkt.imm.Valid && n.f.cfg.GetNotifyMode == GetNotifyDeferred {
		// Unreliable network (paper §VIII): the buffer-reusable
		// notification may only fire once the data has safely arrived
		// at the origin; the origin then notifies us back.
		resp.imm = pkt.imm
		resp.regionID = pkt.regionID
		resp.offset = pkt.offset
		resp.notifyBack = true
	} else if pkt.imm.Valid && n.f.cfg.GetNotifyMode == GetNotifyOriginOrdered {
		// The origin injected a separate ordered notification write;
		// do not notify here.
	} else {
		// Reliable network with read-with-immediate: notify as soon as
		// the data has been read here at the data holder.
		n.postCQE(pkt.origin, pkt.imm, pkt.regionID, pkt.offset, OpGet, length)
	}
	n.f.transmit(resp)
}

// postCQE records a destination notification for an operation carrying an
// immediate. When the owning region has a registered sink the entry is
// dispatched to it directly at delivery time; otherwise intra-node
// notifications go through the shared-memory ring (the XPMEM path) and
// inter-node ones through the uGNI-style destination CQ.
func (n *NIC) postCQE(origin int, imm Imm, regionID, offset int, kind OpKind, length int) {
	if !imm.Valid {
		return
	}
	n.mu.Lock()
	if sink := n.sinks[regionID]; sink != nil {
		n.mu.Unlock()
		sink.Deliver(CQE{
			Origin: origin, Imm: imm.Val, Kind: kind,
			RegionID: regionID, Offset: offset, Len: length,
		})
		return
	}
	if n.f.SameNode(origin, n.rank) {
		n.ring.push(ringEntry{source: origin, imm: imm.Val, kind: kind,
			regionID: regionID, offset: offset, length: length})
	} else {
		n.destCQ.Push(CQE{
			Origin: origin, Imm: imm.Val, Kind: kind,
			RegionID: regionID, Offset: offset, Len: length,
		})
		if n.destCQ.Len() > n.destHighWater {
			n.destHighWater = n.destCQ.Len()
		}
	}
	n.mu.Unlock()
	n.destGate.Broadcast()
}

// sendAck returns a remote-completion acknowledgement to the origin. opID
// is the wire identity of op, echoed for cross-process completions (the
// pointer itself is meaningless outside the origin process).
func (n *NIC) sendAck(op *Op, opID uint64, origin int, value uint64, extraDelay int64) {
	pkt := newPacket()
	*pkt = packet{
		kind: pktAck, origin: n.rank, target: origin,
		wireSize: 0, op: op, opID: opID, operand: value, extraDelay: extraDelay,
	}
	n.f.transmit(pkt)
}

// finishLocal marks op complete at its origin NIC (this NIC).
func (n *NIC) finishLocal(op *Op, value uint64) {
	op.nic.completeOp(op, value)
}

// Load64 atomically reads the uint64 at off in a local region, with a
// happens-before edge against concurrent remote deliveries — the primitive
// a busy-polling consumer (e.g. the paper's One Sided ring-buffer protocol)
// uses to watch its own window memory. Synchronization is per region: a
// polling consumer never contends with traffic to other regions.
func (r *MemRegion) Load64(off int) uint64 {
	r.lockR()
	v := binary.LittleEndian.Uint64(r.buf[off:])
	r.mu.RUnlock()
	return v
}

// Store64 writes the uint64 at off in a local region under the region's
// write lock.
func (r *MemRegion) Store64(off int, v uint64) {
	r.lockW()
	binary.LittleEndian.PutUint64(r.buf[off:], v)
	r.mu.Unlock()
}

// commitInlineLocked commits a drained ring entry's inline payload into
// its region (tolerating a deregistered region) and recycles the pooled
// buffer. Caller holds n.mu; the region lock nests inside it.
func (n *NIC) commitInlineLocked(e ringEntry) {
	if e.inline == nil {
		return
	}
	if reg := n.regionOrNil(e.regionID); reg != nil {
		reg.commit(e.offset, e.inline)
	}
	if e.pooled {
		n.f.pool.put(e.inline)
	}
}

// PollDest pops the oldest destination notification, if any: first the
// uGNI-style CQ, then the shared-memory ring (the target "checks the XPMEM
// notification queue in addition to the uGNI completion queue", §IV-C).
// Inline ring payloads are committed to the window here.
func (n *NIC) PollDest() (CQE, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.destCQ.Len() > 0 {
		return n.destCQ.Pop(), true
	}
	if e, ok := n.ring.pop(); ok {
		n.commitInlineLocked(e)
		return CQE{Origin: e.source, Imm: e.imm, Kind: e.kind,
			RegionID: e.regionID, Offset: e.offset, Len: e.length}, true
	}
	return CQE{}, false
}

// WaitDest parks p until a destination notification is available (CQ or
// shared-memory ring). Only the owning rank may call it (single consumer).
// Once a peer failure is recorded, an empty queue panics with the failure
// (unwrapping to ErrPeerFailed) instead of parking forever: the expected
// notification may never come, and job teardown beats a silent hang.
func (n *NIC) WaitDest(p *exec.Proc) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.destCQ.Len() == 0 && n.ring.count == 0 {
		if n.anyPeerFailed {
			panic(n.peerPanicLocked())
		}
		n.destGate.Wait(p)
	}
}

// DestDepth returns the number of pending destination notifications (CQ
// plus ring).
func (n *NIC) DestDepth() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.destCQ.Len() + n.ring.count
}

// RingHighWater returns the maximum shared-memory ring occupancy observed.
func (n *NIC) RingHighWater() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.highWater
}

// DestHighWater returns the maximum destination CQ depth observed.
func (n *NIC) DestHighWater() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.destHighWater
}

// RegionLockContention returns the number of region-lock acquisitions on
// this NIC that found the lock already held — how often concurrent data
// traffic actually collided on one region after lock sharding.
func (n *NIC) RegionLockContention() int64 {
	return n.regionContention.Load()
}

// classQLocked returns class's bucket, creating it on first use.
func (n *NIC) classQLocked(class int) *msgClassQ {
	q := n.msgQs[class]
	if q == nil {
		if n.msgQs == nil {
			n.msgQs = make(map[int]*msgClassQ)
		}
		q = &msgClassQ{}
		n.msgQs[class] = q
	}
	return q
}

// enqueueMsgLocked buckets an arriving message and collects the waiters
// to wake: exactly those parked on the message's class. Broadcasts happen
// after the caller drops n.mu, per the Gate contract convention.
func (n *NIC) enqueueMsgLocked(m *Msg) []*msgWaiter {
	q := n.classQLocked(m.Class)
	n.msgSeq++
	q.q.Push(msgEntry{m: m, seq: n.msgSeq})
	n.msgDepth++
	if n.msgDepth > n.msgHighWater {
		n.msgHighWater = n.msgDepth
	}
	if d := q.q.Len(); d > q.highWater {
		q.highWater = d
	}
	var wake []*msgWaiter
	for _, w := range q.waiters {
		if !w.ready {
			w.ready = true
			wake = append(wake, w)
		}
	}
	return wake
}

// popMsgLocked removes the oldest queued message across the given
// classes: the per-class FIFO heads are compared by arrival sequence, so
// a multi-class consumer sees the same arrival order a single shared
// queue would have given it.
func (n *NIC) popMsgLocked(classes []int) (*Msg, bool) {
	var best *msgClassQ
	for _, c := range classes {
		q := n.msgQs[c]
		if q == nil || q.q.Len() == 0 {
			continue
		}
		if best == nil || q.q.Front().seq < best.q.Front().seq {
			best = q
		}
	}
	if best == nil {
		return nil, false
	}
	n.msgDepth--
	return best.q.Pop().m, true
}

// acquireMsgWaiterLocked registers a (pooled) waiter record under every
// class in classes.
func (n *NIC) acquireMsgWaiterLocked(classes []int) *msgWaiter {
	var w *msgWaiter
	if k := len(n.msgWaiterPool); k > 0 {
		w = n.msgWaiterPool[k-1]
		n.msgWaiterPool = n.msgWaiterPool[:k-1]
	} else {
		w = &msgWaiter{gate: n.f.env.NewGate(&n.mu)}
	}
	w.ready = false
	w.classes = append(w.classes[:0], classes...)
	for _, c := range classes {
		q := n.classQLocked(c)
		q.waiters = append(q.waiters, w)
	}
	return w
}

// releaseMsgWaiterLocked deregisters w from its classes and returns it to
// the pool. The waiter lists are tiny (one entry per concurrently parked
// consumer on the class), so the removal scan is cheap.
func (n *NIC) releaseMsgWaiterLocked(w *msgWaiter) {
	for _, c := range w.classes {
		q := n.msgQs[c]
		for i, o := range q.waiters {
			if o == w {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				break
			}
		}
	}
	w.classes = w.classes[:0]
	n.msgWaiterPool = append(n.msgWaiterPool, w)
}

// waitMsgLocked parks p until a message in one of classes is available
// and pops it. Queued messages drain even after a peer failure; only a
// wait that would otherwise park forever panics with the failure (the
// job-fatal unblocking policy: any protocol blocked on messages may be
// waiting on the dead rank, and teardown beats a hang).
func (n *NIC) waitMsgLocked(p *exec.Proc, classes []int) *Msg {
	for {
		if m, ok := n.popMsgLocked(classes); ok {
			return m
		}
		if n.anyPeerFailed {
			panic(n.peerPanicLocked())
		}
		w := n.acquireMsgWaiterLocked(classes)
		for !w.ready && !n.anyPeerFailed {
			w.gate.Wait(p)
		}
		n.releaseMsgWaiterLocked(w)
	}
}

// PollMsgClass removes and returns the oldest queued message of class.
// The probe touches only that class's bucket — O(1) regardless of what
// other classes have queued.
func (n *NIC) PollMsgClass(class int) (*Msg, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.popMsgLocked([]int{class})
}

// PollMsgClasses removes and returns the oldest queued message whose
// class is in classes, in cross-class arrival order.
func (n *NIC) PollMsgClasses(classes ...int) (*Msg, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.popMsgLocked(classes)
}

// WaitMsgClass parks p until a message of class is available, removes it,
// and returns it. Arrivals in other classes do not wake the waiter.
func (n *NIC) WaitMsgClass(p *exec.Proc, class int) *Msg {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.waitMsgLocked(p, []int{class})
}

// WaitMsgClasses parks p until a message in any of classes is available
// and returns the oldest such arrival.
func (n *NIC) WaitMsgClasses(p *exec.Proc, classes ...int) *Msg {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.waitMsgLocked(p, classes)
}

// MsgDepth returns the number of queued messages across all classes.
func (n *NIC) MsgDepth() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgDepth
}

// MsgClassDepth returns the number of queued messages of one class.
func (n *NIC) MsgClassDepth(class int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if q := n.msgQs[class]; q != nil {
		return q.q.Len()
	}
	return 0
}

// MsgHighWater returns the maximum total message-queue depth observed
// across all class buckets. Since the bucketed engine dispatches by
// class, depth no longer translates into scan cost — the mark is a
// protocol-pressure statistic (how far consumers fell behind arrivals),
// not a matching-cost bound.
func (n *NIC) MsgHighWater() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.msgHighWater
}

// MsgClassHighWater returns the per-class maximum queue depths observed,
// keyed by message class. Only classes that ever queued a message appear.
func (n *NIC) MsgClassHighWater() map[int]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[int]int, len(n.msgQs))
	for c, q := range n.msgQs {
		out[c] = q.highWater
	}
	return out
}

// InstallNotifySink routes all future destination notifications for
// regionID directly to sink at delivery time, and extracts any backlog that
// already accumulated in the shared queues: destination-CQ entries first,
// then shared-memory ring entries, matching PollDest's drain order so
// arrival order is preserved across the handover. Inline ring payloads are
// committed to the region during extraction. The returned backlog must be
// ingested by the caller before it releases whatever lock serializes the
// sink's Deliver, or handover ordering is lost.
func (n *NIC) InstallNotifySink(regionID int, sink NotifySink) []CQE {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.sinks == nil {
		n.sinks = make(map[int]NotifySink)
	}
	n.sinks[regionID] = sink
	var backlog []CQE
	if n.destCQ.Len() > 0 {
		var kept []CQE
		for n.destCQ.Len() > 0 {
			e := n.destCQ.Pop()
			if e.RegionID == regionID {
				backlog = append(backlog, e)
			} else {
				kept = append(kept, e)
			}
		}
		for _, e := range kept {
			n.destCQ.Push(e)
		}
	}
	if n.ring.count > 0 {
		var keep []ringEntry
		for {
			e, ok := n.ring.pop()
			if !ok {
				break
			}
			if e.regionID != regionID {
				keep = append(keep, e)
				continue
			}
			n.commitInlineLocked(e)
			backlog = append(backlog, CQE{Origin: e.source, Imm: e.imm, Kind: e.kind,
				RegionID: e.regionID, Offset: e.offset, Len: e.length})
		}
		for _, e := range keep {
			n.ring.push(e)
		}
	}
	return backlog
}

// RemoveNotifySink stops delivery-time dispatch for regionID. Notifications
// arriving afterwards fall back to the shared destination CQ / ring.
func (n *NIC) RemoveNotifySink(regionID int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.sinks, regionID)
}

// Pending returns the number of operations to target awaiting remote
// completion.
func (n *NIC) Pending(target int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.outstanding[target]
}

// Flush parks p until every operation this NIC issued to target is remotely
// complete (MPI_Win_flush semantics).
func (n *NIC) Flush(p *exec.Proc, target int) {
	n.checkTarget(target)
	n.mu.Lock()
	for n.outstanding[target] > 0 {
		n.opFlushWaiters++
		n.opGate.Wait(p)
		n.opFlushWaiters--
	}
	n.mu.Unlock()
}

// FlushAll parks p until every outstanding operation from this NIC is
// remotely complete (MPI_Win_flush_all semantics).
func (n *NIC) FlushAll(p *exec.Proc) {
	n.mu.Lock()
	for n.totalOut > 0 {
		n.opFlushWaiters++
		n.opGate.Wait(p)
		n.opFlushWaiters--
	}
	n.mu.Unlock()
}
