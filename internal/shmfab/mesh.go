package shmfab

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// ErrMeshClosed reports a send attempted after Close.
var ErrMeshClosed = errors.New("shmfab: mesh closed")

// Config assembles one rank's mesh over pre-created segments.
type Config struct {
	// Self is this rank, N the job size.
	Self, N int
	// Segments is indexed by peer rank (nil at Self); Segments[q] is the
	// pair segment shared with rank q.
	Segments []*Segment
	// HeartbeatInterval is the producer liveness bump period (default 25ms).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a peer dead after its heartbeat stalls this
	// long without a clean goodbye (default 5s).
	HeartbeatTimeout time.Duration
	// StartupGrace is the extended allowance for a peer that has never
	// beaten (still booting; default 10s).
	StartupGrace time.Duration
}

// Stats are the transport counters (monotonic, read via ReadStats).
type Stats struct {
	EntriesSent   uint64 // ring entries published
	EntriesRecv   uint64 // ring entries consumed
	CompactSent   uint64 // puts/acks using the compact entry encoding
	GenericSent   uint64 // frames taking the generic bulk encoding
	FragFrames    uint64 // oversized frames that fragmented
	BulkBytesSent uint64
	BulkBytesRecv uint64
	SendStalls    uint64 // backoff rounds while a ring or bulk region was full
}

// Mesh is one rank's endpoint of the shared-memory fabric: it satisfies
// fabric.Link (structurally) and reports Lossless() so the fabric runs it
// without the reliable-delivery layer. One poller goroutine drains every
// inbound ring and one heartbeat goroutine covers liveness for all peers —
// O(1) goroutines per process regardless of job size, matching the TCP
// mesh's single-poller rx.
type Mesh struct {
	self, n int
	peers   []*shmPeer // nil at self
	segs    []*Segment

	rx       func(from int, fr *wire.Frame, free func())
	peerDown func(rank int, err error)

	beatInterval time.Duration
	beatTimeout  time.Duration
	startupGrace time.Duration

	closed   atomic.Bool
	suppress atomic.Bool // heartbeat suppressed: this rank plays dead
	quit     chan struct{}
	wg       sync.WaitGroup

	entriesSent, entriesRecv     atomic.Uint64
	compactSent, genericSent     atomic.Uint64
	fragFrames                   atomic.Uint64
	bulkBytesSent, bulkBytesRecv atomic.Uint64
	sendStalls                   atomic.Uint64
}

type shmPeer struct {
	rank int

	// Producer side, serialized under mu (app goroutines and rx workers
	// both send).
	mu      sync.Mutex
	prod    *producer
	scratch []byte

	// Consumer side: touched only by the poller goroutine.
	cons      *consumer
	consDone  bool
	fragBuf   []byte
	fragFill  int
	frScratch wire.Frame // decode target, reset and reused per entry

	// Cross-side state.
	down    atomic.Bool // peer declared dead
	byeSeen atomic.Bool // clean goodbye observed (closed word + drained)

	// Heartbeat-monitor state: touched only by the beat goroutine.
	lastBeat   uint64
	lastChange time.Time
	everBeat   bool
}

// Attach builds this rank's mesh over the given segments. The segments
// must already be mapped (launcher fds, NA_SHM_DIR files, or heap).
func Attach(cfg Config) (*Mesh, error) {
	if cfg.N <= 0 || cfg.Self < 0 || cfg.Self >= cfg.N {
		return nil, fmt.Errorf("shmfab: rank %d outside job of %d", cfg.Self, cfg.N)
	}
	if len(cfg.Segments) != cfg.N {
		return nil, fmt.Errorf("shmfab: %d segments for %d ranks", len(cfg.Segments), cfg.N)
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 25 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 5 * time.Second
	}
	if cfg.StartupGrace <= 0 {
		cfg.StartupGrace = 10 * time.Second
	}
	m := &Mesh{
		self:         cfg.Self,
		n:            cfg.N,
		peers:        make([]*shmPeer, cfg.N),
		segs:         cfg.Segments,
		beatInterval: cfg.HeartbeatInterval,
		beatTimeout:  cfg.HeartbeatTimeout,
		startupGrace: cfg.StartupGrace,
		quit:         make(chan struct{}),
	}
	now := time.Now()
	for q := 0; q < cfg.N; q++ {
		if q == cfg.Self {
			continue
		}
		s := cfg.Segments[q]
		lo, hi := cfg.Self, q
		if lo > hi {
			lo, hi = hi, lo
		}
		if s == nil || s.Lo != lo || s.Hi != hi {
			return nil, fmt.Errorf("shmfab: segment for peer %d is not the (%d,%d) pair", q, lo, hi)
		}
		// Direction 0 flows Lo -> Hi.
		prodDir, consDir := 0, 1
		if cfg.Self == s.Hi {
			prodDir, consDir = 1, 0
		}
		m.peers[q] = &shmPeer{
			rank:       q,
			prod:       newProducer(newDirRing(s, prodDir)),
			cons:       newConsumer(newDirRing(s, consDir)),
			lastChange: now,
		}
	}
	return m, nil
}

// Self returns the local rank.
func (m *Mesh) Self() int { return m.self }

// N returns the job size.
func (m *Mesh) N() int { return m.n }

// Lossless reports that the ring delivers every published frame in order:
// the fabric seam reads this and leaves the reliable layer off.
func (m *Mesh) Lossless() bool { return true }

// ReadStats snapshots the transport counters.
func (m *Mesh) ReadStats() Stats {
	return Stats{
		EntriesSent:   m.entriesSent.Load(),
		EntriesRecv:   m.entriesRecv.Load(),
		CompactSent:   m.compactSent.Load(),
		GenericSent:   m.genericSent.Load(),
		FragFrames:    m.fragFrames.Load(),
		BulkBytesSent: m.bulkBytesSent.Load(),
		BulkBytesRecv: m.bulkBytesRecv.Load(),
		SendStalls:    m.sendStalls.Load(),
	}
}

// Send publishes one frame onto the ring toward target. Blocks while the
// ring (or bulk region) is full — ring publication is this transport's
// flow control — and fails if the peer dies or the mesh closes meanwhile.
func (m *Mesh) Send(target int, fr *wire.Frame) error {
	if m.closed.Load() {
		return ErrMeshClosed
	}
	if target < 0 || target >= m.n || target == m.self {
		return fmt.Errorf("shmfab: bad send target %d", target)
	}
	p := m.peers[target]
	if p.down.Load() {
		return fmt.Errorf("shmfab: peer %d is down", target)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return m.send(p, fr)
}

func (m *Mesh) send(p *shmPeer, fr *wire.Frame) error {
	if compactPut(fr, m.self, p.rank) {
		if len(fr.Data) <= InlineCapacity {
			e, err := m.waitEntry(p)
			if err != nil {
				return err
			}
			encPutInline(e, fr)
			p.prod.publish()
			m.entriesSent.Add(1)
			m.compactSent.Add(1)
			return nil
		}
		if len(fr.Data) <= maxBulkAlloc {
			off, buf, err := m.waitBulk(p, len(fr.Data))
			if err != nil {
				return err
			}
			copy(buf, fr.Data)
			e, err := m.waitEntry(p)
			if err != nil {
				return err
			}
			encPutBulk(e, fr, off)
			p.prod.publish()
			m.entriesSent.Add(1)
			m.compactSent.Add(1)
			m.bulkBytesSent.Add(uint64(len(fr.Data)))
			return nil
		}
		// Oversized put: fall through to the generic (fragmented) path.
	} else if compactAck(fr, m.self, p.rank) {
		e, err := m.waitEntry(p)
		if err != nil {
			return err
		}
		encAck(e, fr)
		p.prod.publish()
		m.entriesSent.Add(1)
		m.compactSent.Add(1)
		return nil
	}

	// Generic path: the full wire encoding travels through bulk.
	p.scratch = wire.Append(p.scratch[:0], fr)
	enc := p.scratch
	m.genericSent.Add(1)
	if len(enc) <= maxBulkAlloc {
		off, buf, err := m.waitBulk(p, len(enc))
		if err != nil {
			return err
		}
		copy(buf, enc)
		e, err := m.waitEntry(p)
		if err != nil {
			return err
		}
		encFrame(e, off, len(enc))
		p.prod.publish()
		m.entriesSent.Add(1)
		m.bulkBytesSent.Add(uint64(len(enc)))
		return nil
	}
	// Fragmented: chunks stream through bulk as the consumer frees them.
	m.fragFrames.Add(1)
	total := len(enc)
	first := true
	for len(enc) > 0 {
		chunk := len(enc)
		if chunk > fragChunk {
			chunk = fragChunk
		}
		off, buf, err := m.waitBulk(p, chunk)
		if err != nil {
			return err
		}
		copy(buf, enc[:chunk])
		e, err := m.waitEntry(p)
		if err != nil {
			return err
		}
		encFrag(e, first, off, chunk, total)
		p.prod.publish()
		m.entriesSent.Add(1)
		m.bulkBytesSent.Add(uint64(chunk))
		enc = enc[chunk:]
		first = false
	}
	return nil
}

// waitEntry reserves the next ring slot, backing off while the ring is
// full. The reservation is private until publish().
func (m *Mesh) waitEntry(p *shmPeer) ([]byte, error) {
	for spins := 0; ; spins++ {
		if e, ok := p.prod.tryReserve(); ok {
			return e, nil
		}
		if err := m.stall(p, spins); err != nil {
			return nil, err
		}
	}
}

// waitBulk reserves n contiguous bulk bytes, backing off while the region
// is full.
func (m *Mesh) waitBulk(p *shmPeer, n int) (uint64, []byte, error) {
	for spins := 0; ; spins++ {
		if off, buf, ok := p.prod.tryBulk(n); ok {
			return off, buf, nil
		}
		if err := m.stall(p, spins); err != nil {
			return 0, nil, err
		}
	}
}

// stall is one backoff round of a full-ring wait: fail fast if the peer
// died or the mesh closed, otherwise yield (briefly sleeping once the
// consumer is clearly behind).
func (m *Mesh) stall(p *shmPeer, spins int) error {
	if p.down.Load() {
		return fmt.Errorf("shmfab: peer %d died with the ring full", p.rank)
	}
	if m.closed.Load() {
		return ErrMeshClosed
	}
	m.sendStalls.Add(1)
	if spins < 200 {
		runtime.Gosched()
	} else {
		time.Sleep(20 * time.Microsecond)
	}
	return nil
}

// Start installs the receive callbacks and launches the poller and
// heartbeat goroutines. The rx contract matches fabric.Link: frame slices
// alias the mapped segment and must be copied before rx returns.
func (m *Mesh) Start(rx func(from int, fr *wire.Frame), peerDown func(rank int, err error)) {
	m.StartBorrowed(func(from int, fr *wire.Frame, free func()) {
		rx(from, fr)
		if free != nil {
			free()
		}
	}, peerDown)
}

// StartBorrowed is Start for a receiver that can account for loans: when
// a frame's Data lives in the segment's bulk region, rx gets a non-nil
// free and may retain the bytes past return — the span is not reused
// until free is called (exactly once, from any goroutine). This is what
// lets the fabric commit bulk puts straight from shared memory with no
// staging copy.
func (m *Mesh) StartBorrowed(rx func(from int, fr *wire.Frame, free func()), peerDown func(rank int, err error)) {
	m.rx = rx
	m.peerDown = peerDown
	m.wg.Add(2)
	go m.pollLoop()
	go m.beatLoop()
}

// pollLoop is the single rx goroutine: it round-robins every inbound
// ring, draining up to a batch per peer per round, with time-based
// adaptive backoff when everything is idle: yield-spin for the first
// stretch (a sleeping poller pays timer-slack latency on every wakeup —
// hundreds of microseconds per message hop — so the latency-critical
// regime, where traffic resumes within a round trip, must stay out of
// the timer), then escalate to short and finally long sleeps.
func (m *Mesh) pollLoop() {
	defer m.wg.Done()
	const batch = 64
	var idleSince time.Time
	for {
		progress := false
		for _, p := range m.peers {
			if p == nil || p.consDone {
				continue
			}
			if p.down.Load() {
				p.consDone = true
				continue
			}
			for i := 0; i < batch; i++ {
				e, ok := p.cons.poll()
				if !ok {
					if p.cons.closedAndDrained() {
						p.consDone = true
						p.byeSeen.Store(true)
					}
					break
				}
				m.consume(p, e)
				progress = true
			}
		}
		select {
		case <-m.quit:
			return
		default:
		}
		if progress {
			idleSince = time.Time{}
			continue
		}
		if idleSince.IsZero() {
			idleSince = time.Now()
			runtime.Gosched()
			continue
		}
		switch elapsed := time.Since(idleSince); {
		case elapsed < 500*time.Microsecond:
			runtime.Gosched()
		case elapsed < 10*time.Millisecond:
			time.Sleep(50 * time.Microsecond)
		default:
			time.Sleep(500 * time.Microsecond)
		}
	}
}

// consume decodes and delivers one entry, then retires it. Data slices
// handed to rx alias the mapped segment; the fabric's ingest path copies
// before returning, per the Link contract.
func (m *Mesh) consume(p *shmPeer, e []byte) {
	m.entriesRecv.Add(1)
	// Decode into the peer's scratch frame: rx either finishes with the
	// frame before returning or copies the fields it keeps (the Data
	// slice points into the segment, not the frame), so the struct is
	// reusable — and passing a heap-resident pointer keeps the per-entry
	// path allocation-free.
	fr := &p.frScratch
	*fr = wire.Frame{}
	switch e[0] {
	case entPut:
		n := int(getU16(e, 2))
		if n > InlineCapacity {
			m.failPeer(p, fmt.Errorf("shmfab: inline length %d from %d", n, p.rank))
			return
		}
		decPut(e, p.rank, m.self, e[24:24+n], fr)
		m.rx(p.rank, fr, nil)
		p.cons.advance()
	case entPutBulk:
		off, n := getU64(e, 24), int(getU64(e, 32))
		if !bulkOK(off, n) {
			m.failPeer(p, fmt.Errorf("shmfab: bad bulk reference from %d", p.rank))
			return
		}
		sp := p.cons.deferBulk(n)
		decPut(e, p.rank, m.self, p.cons.bulkBytes(off, n), fr)
		m.rx(p.rank, fr, sp.fn)
		m.bulkBytesRecv.Add(uint64(n))
		p.cons.advance()
	case entAck:
		decAck(e, p.rank, m.self, fr)
		m.rx(p.rank, fr, nil)
		p.cons.advance()
	case entFrame:
		off, n := getU64(e, 24), int(getU64(e, 32))
		if !bulkOK(off, n) {
			m.failPeer(p, fmt.Errorf("shmfab: bad bulk reference from %d", p.rank))
			return
		}
		if err := wire.Decode(p.cons.bulkBytes(off, n), fr); err != nil {
			m.failPeer(p, fmt.Errorf("shmfab: corrupt frame from %d: %w", p.rank, err))
			return
		}
		sp := p.cons.deferBulk(n)
		m.rx(p.rank, fr, sp.fn)
		m.bulkBytesRecv.Add(uint64(n))
		p.cons.advance()
	case entFragFirst, entFragNext:
		off, chunk := getU64(e, 24), int(getU64(e, 32))
		if !bulkOK(off, chunk) {
			m.failPeer(p, fmt.Errorf("shmfab: bad bulk reference from %d", p.rank))
			return
		}
		if e[0] == entFragFirst {
			total := int(getU64(e, 40))
			if total <= 0 || total > wire.MaxFrame {
				m.failPeer(p, fmt.Errorf("shmfab: bad fragment total %d from %d", total, p.rank))
				return
			}
			p.fragBuf = make([]byte, 0, total)
			p.fragFill = total
		}
		if p.fragFill == 0 || len(p.fragBuf)+chunk > p.fragFill {
			m.failPeer(p, fmt.Errorf("shmfab: stray fragment from %d", p.rank))
			return
		}
		sp := p.cons.deferBulk(chunk)
		p.fragBuf = append(p.fragBuf, p.cons.bulkBytes(off, chunk)...)
		m.bulkBytesRecv.Add(uint64(chunk))
		p.cons.advance()
		p.cons.releaseBulk(sp) // reassembly copied the chunk out
		if len(p.fragBuf) == p.fragFill {
			buf := p.fragBuf
			p.fragBuf, p.fragFill = nil, 0
			if err := wire.Decode(buf, fr); err != nil {
				m.failPeer(p, fmt.Errorf("shmfab: corrupt fragmented frame from %d: %w", p.rank, err))
				return
			}
			m.rx(p.rank, fr, nil)
		}
	default:
		m.failPeer(p, fmt.Errorf("shmfab: unknown entry kind %d from %d", e[0], p.rank))
	}
}

// SuppressHeartbeat stops bumping this rank's liveness word in every
// outbound direction, so peers' detectors see exactly what a frozen
// process would produce: an open segment whose heartbeat has stalled. The
// fault injector's hang/crash modes use it — a hung rank keeps its segment
// mapped and keeps consuming, but must still fan out ErrPeerFailed at the
// survivors once the timeout elapses. Peer monitoring continues.
func (m *Mesh) SuppressHeartbeat() { m.suppress.Store(true) }

// beatLoop bumps this rank's heartbeat in every outbound direction and
// watches every peer's: a stalled heartbeat without a clean goodbye is a
// dead peer.
func (m *Mesh) beatLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.beatInterval)
	defer t.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-t.C:
		}
		now := time.Now()
		suppressed := m.suppress.Load()
		for _, p := range m.peers {
			if p == nil {
				continue
			}
			if !suppressed {
				p.prod.beat()
			}
			if p.down.Load() || p.byeSeen.Load() {
				continue
			}
			if hb := p.cons.heartbeatValue(); hb != p.lastBeat {
				p.lastBeat = hb
				p.lastChange = now
				p.everBeat = true
				continue
			}
			if p.cons.closedAndDrained() {
				continue // clean goodbye pending the poller's drain
			}
			limit := m.beatTimeout
			if !p.everBeat {
				limit = m.startupGrace
			}
			if now.Sub(p.lastChange) > limit {
				m.failPeer(p, fmt.Errorf("shmfab: peer %d heartbeat stalled for %v", p.rank, now.Sub(p.lastChange)))
			}
		}
	}
}

// failPeer marks a peer dead (idempotently) and fires the peerDown
// callback unless the mesh itself is closing.
func (m *Mesh) failPeer(p *shmPeer, err error) {
	if p.down.Swap(true) {
		return
	}
	if m.peerDown != nil && !m.closed.Load() {
		m.peerDown(p.rank, err)
	}
}

// Close tears the mesh down. Graceful close publishes the goodbye flag
// (ordered after every prior publish) and waits briefly for peers'
// goodbyes so nobody unmaps a segment a peer is still filling; abrupt
// close (after a rank error) skips the goodbye — peers see the heartbeat
// stall and declare this rank dead, exactly like a crash.
func (m *Mesh) Close(graceful bool) error {
	if m.closed.Swap(true) {
		return nil
	}
	if graceful {
		for _, p := range m.peers {
			if p == nil {
				continue
			}
			p.mu.Lock()
			p.prod.close()
			p.mu.Unlock()
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			all := true
			for _, p := range m.peers {
				if p != nil && !p.byeSeen.Load() && !p.down.Load() {
					all = false
					break
				}
			}
			if all {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	close(m.quit)
	m.wg.Wait()
	// Outstanding loans: a receive worker may still be committing from a
	// borrowed bulk span. Wait for every span to come home before the
	// segment memory can be unmapped.
	loanDeadline := time.Now().Add(2 * time.Second)
	for _, p := range m.peers {
		if p == nil {
			continue
		}
		for !p.cons.bulkIdle() && time.Now().Before(loanDeadline) {
			time.Sleep(100 * time.Microsecond)
		}
	}
	for _, s := range m.segs {
		if s != nil {
			s.Close()
		}
	}
	return nil
}
