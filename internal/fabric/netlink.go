package fabric

// The distributed engine seam: a Fabric whose remote NICs live in other OS
// processes, reached through a Link (implemented by netfab.Mesh over TCP).
// Only the local rank's NIC exists; dispatch routes any packet addressed to
// a remote rank through netSend (packet → wire.Frame → socket) and inbound
// frames re-enter through netRecv (frame → packet → the local NIC's
// per-origin receive lane), so ordering, backpressure, and delivery-time
// semantics are identical to the single-process Real engine.
//
// The reliable-delivery layer is always active on a distributed fabric: it
// provides the sequence numbers that make the TCP path safe under fault
// injection, and — more importantly — its peer-failure machinery is what
// converts a lost connection into typed ErrPeerFailed completions. TCP
// gives per-stream reliability but says nothing about a peer that dies; the
// rel layer's retransmit budget covers silent hangs and the Link's
// peerDown callback covers abrupt closes, both funneling into the same
// declarePeerFailed path.
//
// Op handles cannot cross a process boundary, so the origin registers each
// op under a process-local wire ID at post time (transmit); acks and get
// responses echo the ID and netRecv resolves it back to the handle. IDs are
// never reused (monotonic counter), so a stale echo after the op completed
// resolves to nothing and the packet is dropped by deliverNow's nil guard.

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/simtime"
	"repro/internal/wire"
)

// Link is the cross-process transport a distributed fabric sends through.
// netfab.Mesh satisfies it structurally; the fabric never imports netfab,
// keeping the transport a leaf package.
type Link interface {
	// Self returns the local rank, N the job size.
	Self() int
	N() int
	// Send writes one frame to target. It must not retain fr or its
	// slices after returning.
	Send(target int, fr *wire.Frame) error
	// Start installs the receive callbacks: rx for every data/control
	// frame (its slices alias a reused buffer — copy before returning),
	// peerDown exactly once per peer whose stream ends without a clean
	// goodbye.
	Start(rx func(from int, fr *wire.Frame), peerDown func(rank int, err error))
}

// NewDistributed creates the local-rank slice of a distributed fabric on
// top of an established link. env must be a wall-clock engine (DistEnv).
// The reliable-delivery layer is forced on, with retransmission timers
// re-tuned for real sockets when the caller left them at the Sim-scale
// defaults; cfg.Ranks/RanksPerNode are overridden by the link geometry
// (one rank per process means one rank per "node": the SHM and inline
// fast paths never trigger).
func NewDistributed(env exec.Env, cfg Config, link Link) *Fabric {
	if !env.Mode().Wallclock() {
		panic("fabric: NewDistributed needs a wall-clock engine")
	}
	cfg.Ranks = link.N()
	cfg.RanksPerNode = 1
	cfg.ChargeOverheads = false
	cfg.Reliability.Force = true
	if cfg.Reliability.RTO == 0 {
		// The Sim-tuned 10µs base RTO would spuriously retransmit on any
		// real socket; these cover localhost jitter and scheduler stalls
		// while keeping the failure budget (~3s) inside a test timeout.
		cfg.Reliability.RTO = 50 * simtime.Millisecond
		cfg.Reliability.RTOMax = 400 * simtime.Millisecond
		if cfg.Reliability.MaxAttempts == 0 {
			cfg.Reliability.MaxAttempts = 10
		}
	}
	f := &Fabric{
		cfg:           cfg,
		env:           env,
		nics:          make([]*NIC, cfg.Ranks),
		lastArrive:    make([]simtime.Time, cfg.Ranks*cfg.Ranks),
		link:          link,
		self:          link.Self(),
		netOps:        make(map[uint64]*Op),
		remoteRegions: make(map[int]map[int]int),
	}
	f.nics[f.self] = newNIC(f, f.self)
	var inj *fault.Injector
	if cfg.FaultPlan != nil {
		inj = fault.NewInjector(*cfg.FaultPlan)
	}
	f.rel = newReliability(f, cfg.Reliability, inj)
	f.nics[f.self].startRxWorkers()
	link.Start(f.netRecv, f.netPeerDown)
	return f
}

// Self returns the local rank of a distributed fabric (0 otherwise).
func (f *Fabric) Self() int { return f.self }

// Distributed reports whether this fabric routes remote traffic over a
// process-crossing link.
func (f *Fabric) Distributed() bool { return f.link != nil }

// ---------------------------------------------------------------------------
// Op wire identity
// ---------------------------------------------------------------------------

// netRegisterOp assigns op its wire ID (once; stable across retransmission
// clones, which copy the packet's opID field) and publishes it for ack
// resolution. Called from transmit on the posting goroutine, before the
// packet can reach the wire.
func (f *Fabric) netRegisterOp(op *Op) uint64 {
	f.netMu.Lock()
	if op.netID == 0 {
		f.netOpSeq++
		op.netID = f.netOpSeq
		f.netOps[op.netID] = op
	}
	id := op.netID
	f.netMu.Unlock()
	return id
}

// netLookupOp resolves an echoed wire ID back to the origin-side handle;
// nil when the op already completed (stale echo).
func (f *Fabric) netLookupOp(id uint64) *Op {
	if id == 0 {
		return nil
	}
	f.netMu.Lock()
	op := f.netOps[id]
	f.netMu.Unlock()
	return op
}

// netForgetOp drops a completed op's wire registration.
func (f *Fabric) netForgetOp(id uint64) {
	f.netMu.Lock()
	delete(f.netOps, id)
	f.netMu.Unlock()
}

// netSweepFailed drops the registrations of every op targeting a failed
// rank (their handles were completed with the failure error; a late echo
// must not resurrect them).
func (f *Fabric) netSweepFailed(failed int) {
	f.netMu.Lock()
	for id, op := range f.netOps {
		if op.target == failed {
			delete(f.netOps, id)
		}
	}
	f.netMu.Unlock()
}

// ---------------------------------------------------------------------------
// Region announcements
// ---------------------------------------------------------------------------

// netAnnounceRegion broadcasts a local registration change to every peer.
// Announcements ride the same per-pair FIFO streams as data, so a peer
// always learns about a region before the first access addressed to it can
// have been issued by any rank that waited on the registration barrier.
func (f *Fabric) netAnnounceRegion(id, size int, registered bool) {
	if f.link == nil {
		return
	}
	fr := &wire.Frame{Kind: wire.KindDereg, Origin: f.self, RegionID: id}
	if registered {
		fr.Kind = wire.KindReg
		fr.Operand = uint64(size)
	}
	for r := 0; r < f.cfg.Ranks; r++ {
		if r == f.self {
			continue
		}
		f.link.Send(r, fr) // best effort: a dead peer no longer needs it
	}
}

// RemoteRegionSize returns the last announced size of a peer's region, and
// whether the region is currently registered there.
func (f *Fabric) RemoteRegionSize(rank, regionID int) (int, bool) {
	f.netMu.Lock()
	defer f.netMu.Unlock()
	size, ok := f.remoteRegions[rank][regionID]
	return size, ok
}

// ---------------------------------------------------------------------------
// Outbound: packet → frame
// ---------------------------------------------------------------------------

func pktKindToWire(k pktKind) wire.Kind {
	switch k {
	case pktPut:
		return wire.KindPut
	case pktGetReq:
		return wire.KindGetReq
	case pktGetResp:
		return wire.KindGetResp
	case pktAtomic:
		return wire.KindAtomic
	case pktAccum:
		return wire.KindAccum
	case pktAck:
		return wire.KindAck
	case pktCtrl:
		return wire.KindCtrl
	case pktData:
		return wire.KindData
	case pktNotify:
		return wire.KindNotify
	case pktLinkAck:
		return wire.KindLinkAck
	case pktLinkNack:
		return wire.KindLinkNack
	}
	panic(fmt.Sprintf("fabric: unwirable packet kind %v", k))
}

func wireKindToPkt(k wire.Kind) (pktKind, bool) {
	switch k {
	case wire.KindPut:
		return pktPut, true
	case wire.KindGetReq:
		return pktGetReq, true
	case wire.KindGetResp:
		return pktGetResp, true
	case wire.KindAtomic:
		return pktAtomic, true
	case wire.KindAccum:
		return pktAccum, true
	case wire.KindAck:
		return pktAck, true
	case wire.KindCtrl:
		return pktCtrl, true
	case wire.KindData:
		return pktData, true
	case wire.KindNotify:
		return pktNotify, true
	case wire.KindLinkAck:
		return pktLinkAck, true
	case wire.KindLinkNack:
		return pktLinkNack, true
	}
	return 0, false
}

// netSend serializes one transmission attempt onto the link. pkt is a wire
// clone (or link control packet) under the always-on reliability layer:
// after the frame is written this copy is disposed of — pooled payloads it
// owns (fault-plane corrupt copies) are recycled, shared ones belong to
// the retained original.
func (f *Fabric) netSend(pkt *packet) {
	fr := wire.Frame{
		Kind:       pktKindToWire(pkt.kind),
		Origin:     pkt.origin,
		Target:     pkt.target,
		RegionID:   pkt.regionID,
		Offset:     pkt.offset,
		WireSize:   pkt.wireSize,
		OpID:       pkt.opID,
		Operand:    pkt.operand,
		Compare:    pkt.compare,
		Seq:        pkt.seq,
		Csum:       pkt.csum,
		Imm:        pkt.imm.Val,
		ImmValid:   pkt.imm.Valid,
		NotifyBack: pkt.notifyBack,
		Rel:        pkt.rel,
		AtomicOp:   uint8(pkt.aop),
		AccumOp:    uint8(pkt.accOp),
		Data:       pkt.data,
	}
	if pkt.regionID < 0 {
		fr.RegionID = 0 // acks and messages carry no region; keep encodable
	}
	if m := pkt.msg; m != nil {
		fr.MsgClass = m.Class
		fr.ChargeCopy = m.ChargeCopy
		fr.Data = m.Data
		var err error
		fr.Payload, err = wire.EncodePayload(m.Payload)
		if err != nil {
			panic(fmt.Sprintf("fabric: rank %d cannot send message class %d across processes: %v (register the header type with wire.RegisterPayload)",
				f.self, m.Class, err))
		}
	}
	err := f.link.Send(pkt.target, &fr)
	if pkt.pooled {
		f.pool.put(pkt.data)
	}
	releasePacket(pkt)
	if err != nil && f.rel != nil {
		// The stream to this peer is broken. The mesh's reader will
		// normally notice first; declaring here too makes a failed write
		// surface even when the read side is quiescent (idempotent).
		f.rel.declarePeerFailed(f.self, fr.Target, fmt.Sprintf("send failed: %v", err))
	}
}

// ---------------------------------------------------------------------------
// Inbound: frame → packet
// ---------------------------------------------------------------------------

// netRecv converts an arriving frame into a packet on the local NIC's
// per-origin receive lane. It runs on the mesh's per-peer reader
// goroutine: the frame's slices alias the read buffer, so payload bytes
// are staged into pooled buffers here (the rx copy of a real transport),
// keeping the hot path allocation-free. Backpressure is physical: a full
// lane blocks this reader, which stops draining the socket, which pushes
// back on the sender's TCP window.
func (f *Fabric) netRecv(from int, fr *wire.Frame) {
	switch fr.Kind {
	case wire.KindReg:
		f.netMu.Lock()
		m := f.remoteRegions[fr.Origin]
		if m == nil {
			m = make(map[int]int)
			f.remoteRegions[fr.Origin] = m
		}
		m[fr.RegionID] = int(fr.Operand)
		f.netMu.Unlock()
		return
	case wire.KindDereg:
		f.netMu.Lock()
		delete(f.remoteRegions[fr.Origin], fr.RegionID)
		f.netMu.Unlock()
		return
	}
	kind, ok := wireKindToPkt(fr.Kind)
	if !ok || fr.Target != f.self {
		return // control frame the mesh already handled, or not ours: drop
	}
	pkt := newPacket()
	*pkt = packet{
		kind: kind, origin: fr.Origin, target: fr.Target,
		regionID: fr.RegionID, offset: fr.Offset,
		imm:      Imm{Valid: fr.ImmValid, Val: fr.Imm},
		wireSize: fr.WireSize, notifyBack: fr.NotifyBack,
		opID: fr.OpID, operand: fr.Operand, compare: fr.Compare,
		aop: AtomicOp(fr.AtomicOp), accOp: AccumOp(fr.AccumOp),
		rel: fr.Rel, seq: fr.Seq, csum: fr.Csum,
	}
	switch kind {
	case pktCtrl, pktData:
		payload, err := wire.DecodePayload(fr.Payload)
		if err != nil {
			// An undecodable header cannot be committed; drop the packet
			// and let the reliability layer's checksum/retransmit machinery
			// (or, for persistent garbage, the failure detector) handle it.
			releasePacket(pkt)
			return
		}
		var data []byte
		if len(fr.Data) > 0 {
			data = f.pool.get(len(fr.Data))
			copy(data, fr.Data)
		}
		pkt.msg = &Msg{Origin: fr.Origin, Class: fr.MsgClass, Payload: payload,
			Data: data, ChargeCopy: fr.ChargeCopy}
	case pktAck, pktGetResp:
		pkt.op = f.netLookupOp(fr.OpID)
		if len(fr.Data) > 0 {
			data := f.pool.get(len(fr.Data))
			copy(data, fr.Data)
			pkt.data, pkt.pooled = data, true
		}
	default:
		if len(fr.Data) > 0 {
			data := f.pool.get(len(fr.Data))
			copy(data, fr.Data)
			pkt.data, pkt.pooled = data, true
		}
	}
	f.lanePush(f.nics[f.self], pkt, false)
}

// netPeerDown maps an abrupt connection loss (RST, EOF without goodbye,
// write timeout) onto the peer-failure detector: the same declarePeerFailed
// path a retransmit-budget exhaustion takes, so waiters unblock with the
// same typed ErrPeerFailed.
func (f *Fabric) netPeerDown(rank int, err error) {
	if f.rel == nil {
		return
	}
	f.rel.declarePeerFailed(f.self, rank, fmt.Sprintf("connection lost: %v", err))
}

// NetStatsSource returns the link so callers holding only the fabric can
// surface transport statistics; nil on single-process fabrics.
func (f *Fabric) NetStatsSource() Link { return f.link }
