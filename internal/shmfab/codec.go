package shmfab

import (
	"math"

	"repro/internal/wire"
)

// Entry encoding. An entry is EntrySize bytes:
//
//	w0 @0:  kind u8 | flags u8 | paylen u16 | imm u32
//	w1 @8:  regionID u32 | offset u32
//	w2 @16: opID u64
//	@24:    InlineCapacity payload bytes
//
// Compact kinds carry the hot-path frames (puts and acks) without the
// 81-byte wire header; origin and target are implicit in the ring
// direction. Everything else rides as a generically encoded wire frame in
// the bulk region (entFrame), fragmented when the encoding exceeds
// maxBulkAlloc (entFragFirst/entFragNext).
const (
	entPut       = 1 // KindPut, payload inline
	entPutBulk   = 2 // KindPut, payload in bulk: inline[0:8]=off, [8:16]=len
	entAck       = 3 // KindAck: opID + operand (inline[0:8])
	entFrame     = 4 // wire.Append-encoded frame in bulk: inline[0:8]=off, [8:16]=len
	entFragFirst = 5 // first fragment: inline[0:8]=off, [8:16]=chunk, [16:24]=total
	entFragNext  = 6 // continuation: inline[0:8]=off, [8:16]=chunk

	efImmValid   = 1 << 0
	efNotifyBack = 1 << 1
)

// maxBulkAlloc caps one bulk allocation at half the region so the
// pad-to-wrap arithmetic can always satisfy it once the consumer drains;
// larger frames fragment.
const maxBulkAlloc = BulkSize / 2

// fragChunk is the fragment payload size for oversized frames.
const fragChunk = 1 << 20

// compactPut reports whether fr is a plain put the compact entry encoding
// captures losslessly: every field outside the entry must be zero/false.
// Anything else (sequenced, checksummed, message-class, atomic, oversized
// region coordinates) takes the generic path.
func compactPut(fr *wire.Frame, self, target int) bool {
	return fr.Kind == wire.KindPut &&
		fr.Origin == self && fr.Target == target &&
		fr.Payload == nil && len(fr.Strs) == 0 &&
		fr.MsgClass == 0 && fr.Operand == 0 && fr.Compare == 0 &&
		fr.Seq == 0 && fr.Ack == 0 && fr.Csum == 0 &&
		!fr.Rel && !fr.AckValid && !fr.ChargeCopy &&
		fr.AtomicOp == 0 && fr.AccumOp == 0 &&
		fr.WireSize == len(fr.Data) &&
		fr.RegionID >= 0 && fr.RegionID <= math.MaxUint32 &&
		fr.Offset >= 0 && fr.Offset <= math.MaxUint32
}

// compactAck reports whether fr is a bare completion ack (opID + value).
func compactAck(fr *wire.Frame, self, target int) bool {
	return fr.Kind == wire.KindAck &&
		fr.Origin == self && fr.Target == target &&
		fr.Payload == nil && len(fr.Strs) == 0 && len(fr.Data) == 0 &&
		fr.MsgClass == 0 && fr.Compare == 0 &&
		fr.Seq == 0 && fr.Ack == 0 && fr.Csum == 0 && fr.Imm == 0 &&
		!fr.ImmValid && !fr.NotifyBack && !fr.Rel && !fr.AckValid && !fr.ChargeCopy &&
		fr.AtomicOp == 0 && fr.AccumOp == 0 &&
		fr.RegionID == 0 && fr.Offset == 0 && fr.WireSize == 0
}

func encHeader(e []byte, kind, flags byte, paylen uint16, imm uint32) {
	e[0] = kind
	e[1] = flags
	putU16(e, 2, paylen)
	putU32(e, 4, imm)
}

func putFlags(fr *wire.Frame) byte {
	var fl byte
	if fr.ImmValid {
		fl |= efImmValid
	}
	if fr.NotifyBack {
		fl |= efNotifyBack
	}
	return fl
}

// encPutInline encodes a compact put whose payload rides in the entry.
func encPutInline(e []byte, fr *wire.Frame) {
	encHeader(e, entPut, putFlags(fr), uint16(len(fr.Data)), fr.Imm)
	putU32(e, 8, uint32(fr.RegionID))
	putU32(e, 12, uint32(fr.Offset))
	putU64(e, 16, fr.OpID)
	copy(e[24:], fr.Data)
}

// encPutBulk encodes a compact put whose payload sits in the bulk region.
func encPutBulk(e []byte, fr *wire.Frame, bulkOff uint64) {
	encHeader(e, entPutBulk, putFlags(fr), 0, fr.Imm)
	putU32(e, 8, uint32(fr.RegionID))
	putU32(e, 12, uint32(fr.Offset))
	putU64(e, 16, fr.OpID)
	putU64(e, 24, bulkOff)
	putU64(e, 32, uint64(len(fr.Data)))
}

// encAck encodes a compact completion ack.
func encAck(e []byte, fr *wire.Frame) {
	encHeader(e, entAck, 0, 0, 0)
	putU64(e, 16, fr.OpID)
	putU64(e, 24, fr.Operand)
}

// encFrame references a generically encoded frame in bulk.
func encFrame(e []byte, bulkOff uint64, n int) {
	encHeader(e, entFrame, 0, 0, 0)
	putU64(e, 24, bulkOff)
	putU64(e, 32, uint64(n))
}

// encFrag references one fragment of an oversized encoded frame.
func encFrag(e []byte, first bool, bulkOff uint64, chunk, total int) {
	kind := byte(entFragNext)
	if first {
		kind = entFragFirst
	}
	encHeader(e, kind, 0, 0, 0)
	putU64(e, 24, bulkOff)
	putU64(e, 32, uint64(chunk))
	if first {
		putU64(e, 40, uint64(total))
	}
}

// decPut rebuilds the frame a compact put entry encodes. data must already
// point at the payload (inline or bulk).
func decPut(e []byte, from, self int, data []byte, fr *wire.Frame) {
	*fr = wire.Frame{
		Kind:       wire.KindPut,
		Origin:     from,
		Target:     self,
		RegionID:   int(getU32(e, 8)),
		Offset:     int(getU32(e, 12)),
		WireSize:   len(data),
		OpID:       getU64(e, 16),
		Imm:        getU32(e, 4),
		ImmValid:   e[1]&efImmValid != 0,
		NotifyBack: e[1]&efNotifyBack != 0,
		Data:       data,
	}
}

// decAck rebuilds the frame a compact ack entry encodes.
func decAck(e []byte, from, self int, fr *wire.Frame) {
	*fr = wire.Frame{
		Kind:    wire.KindAck,
		Origin:  from,
		Target:  self,
		OpID:    getU64(e, 16),
		Operand: getU64(e, 24),
	}
}
