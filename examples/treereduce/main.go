// Treereduce: the 16-ary tree reduction of paper §VI-B using the counting
// feature — each parent arms ONE notification request that completes after
// all of its children have deposited their partial sums.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"repro/fompi"
)

const (
	ranks = 64
	arity = 16
	tag   = 7
)

func main() {
	err := fompi.Run(fompi.Options{Ranks: ranks}, func(p *fompi.Proc) {
		var kids []int
		for c := arity*p.Rank() + 1; c <= arity*p.Rank()+arity && c < p.N(); c++ {
			kids = append(kids, c)
		}

		win := p.WinAllocate(8 * arity)
		defer win.Free()

		start := p.Now()
		acc := float64(p.Rank() + 1) // this rank's contribution
		if len(kids) > 0 {
			// The counting feature: one request, expectedCount = #children.
			req := win.NotifyInit(fompi.AnySource, tag, len(kids))
			req.Start()
			req.Wait()
			req.Free()
			for ci := range kids {
				acc += math.Float64frombits(binary.LittleEndian.Uint64(win.Buffer()[8*ci:]))
			}
		}
		if p.Rank() != 0 {
			parent := (p.Rank() - 1) / arity
			slot := (p.Rank() - 1) % arity
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(acc))
			win.PutNotify(parent, 8*slot, b[:], tag)
			win.Flush(parent)
		} else {
			want := float64(p.N()) * float64(p.N()+1) / 2
			fmt.Printf("%d-ary tree reduction over %d ranks: sum=%.0f (want %.0f, %v), latency %s\n",
				arity, p.N(), acc, want, acc == want, p.Now().Sub(start))
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}
