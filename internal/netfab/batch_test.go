package netfab

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestBatchedOrderAndPayload drives many concurrent senders through the
// doorbell/writev tx path into the buffered rx framer over a net.Pipe
// loopback and asserts the stream contract: per-sender FIFO order and
// byte-exact payloads survive arbitrary coalescing. Run under -race this
// also exercises the writer-goroutine handoff.
func TestBatchedOrderAndPayload(t *testing.T) {
	const (
		senders   = 8
		perSender = 400
	)
	meshes := Loopback(2)

	type rx struct {
		sender int
		index  int
		data   []byte
	}
	recvd := make(chan rx, senders*perSender)
	meshes[1].Start(func(from int, fr *wire.Frame) {
		if from != 0 || fr.Kind != wire.KindPut {
			t.Errorf("unexpected frame from %d kind %v", from, fr.Kind)
			return
		}
		recvd <- rx{
			sender: int(fr.OpID),
			index:  int(fr.Operand),
			data:   append([]byte(nil), fr.Data...),
		}
	}, func(rank int, err error) { t.Errorf("peerDown(%d): %v", rank, err) })
	meshes[0].Start(func(int, *wire.Frame) {}, func(rank int, err error) {
		t.Errorf("peerDown(%d): %v", rank, err)
	})

	// Each sender interleaves tiny and multi-KiB payloads so both the
	// low-latency bypass and the queued/doorbell path get traffic; the
	// payload body encodes (sender, index) so corruption is detectable
	// beyond the header fields.
	payload := func(sender, index, size int) []byte {
		b := make([]byte, size)
		binary.LittleEndian.PutUint32(b, uint32(sender))
		binary.LittleEndian.PutUint32(b[4:], uint32(index))
		for i := 8; i < size; i++ {
			b[i] = byte(sender*31 + index + i)
		}
		return b
	}
	sizes := []int{8, 100, 8, 4096, 23, 8, 16384, 8}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				size := sizes[(s+i)%len(sizes)]
				fr := &wire.Frame{
					Kind: wire.KindPut, Origin: 0, Target: 1,
					OpID: uint64(s), Operand: uint64(i),
					Data: payload(s, i, size),
				}
				if err := meshes[0].Send(1, fr); err != nil {
					t.Errorf("sender %d frame %d: %v", s, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	next := make([]int, senders)
	total := 0
	deadline := time.After(20 * time.Second)
	for total < senders*perSender {
		var r rx
		select {
		case r = <-recvd:
		case <-deadline:
			t.Fatalf("received %d/%d frames before timeout", total, senders*perSender)
		}
		if r.sender < 0 || r.sender >= senders {
			t.Fatalf("frame names sender %d", r.sender)
		}
		if r.index != next[r.sender] {
			t.Fatalf("sender %d: got index %d, want %d (FIFO order violated)",
				r.sender, r.index, next[r.sender])
		}
		next[r.sender]++
		size := sizes[(r.sender+r.index)%len(sizes)]
		want := payload(r.sender, r.index, size)
		if len(r.data) != len(want) {
			t.Fatalf("sender %d frame %d: %d bytes, want %d",
				r.sender, r.index, len(r.data), len(want))
		}
		for i := range want {
			if r.data[i] != want[i] {
				t.Fatalf("sender %d frame %d: payload corrupt at byte %d", r.sender, r.index, i)
			}
		}
		total++
	}

	// With 8 senders racing, batching must have engaged: fewer write
	// syscalls than frames on the tx side, and at least one multi-frame
	// read on the rx side. Stats are committed after a flush's WriteTo
	// returns, which can trail the receiver's dispatch: poll them settled.
	settle := time.Now().Add(5 * time.Second)
	tx := meshes[0].ReadStats()
	for tx.FramesSent < senders*perSender && time.Now().Before(settle) {
		time.Sleep(time.Millisecond)
		tx = meshes[0].ReadStats()
	}
	if tx.FramesSent < senders*perSender {
		t.Fatalf("FramesSent = %d, want >= %d", tx.FramesSent, senders*perSender)
	}
	if tx.TxFlushes == 0 || tx.TxFlushes >= tx.FramesSent {
		t.Errorf("no tx coalescing: %d flushes for %d frames", tx.TxFlushes, tx.FramesSent)
	}
	rxStats := meshes[1].ReadStats()
	if rxStats.FramesRecv != tx.FramesSent {
		t.Errorf("FramesRecv = %d, FramesSent = %d", rxStats.FramesRecv, tx.FramesSent)
	}
	multi := uint64(0)
	for b := 2; b < RxCoalesceBuckets; b++ { // buckets 2+: >= 2 frames per read
		multi += rxStats.RxCoalesce[b]
	}
	if multi == 0 {
		t.Errorf("no rx coalescing observed: histogram %v", rxStats.RxCoalesce)
	}

	var closeWG sync.WaitGroup
	for _, m := range meshes {
		closeWG.Add(1)
		go func() { defer closeWG.Done(); m.Close(true) }()
	}
	closeWG.Wait()
}
