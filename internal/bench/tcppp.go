package bench

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rma"
	"repro/internal/runtime"
	"repro/internal/stats"
)

// TCPPingPong measures the notified-put ping-pong over the distributed TCP
// engine: a two-rank loopback cluster (each rank a full distributed
// process image with its own mesh endpoint and fabric) exchanging over real
// localhost sockets. Unlike the Sim experiments, which report modeled LogGP
// time, this reports measured wall-clock half-round-trip latency, so the
// distribution matters: the table carries p50/p90/p99/max per size.
func TCPPingPong() *Table {
	sizes := []int{8, 64, 512, 4096, 32768, 262144}
	reps, warmup := 400, 50
	if Quick {
		reps, warmup = 40, 5
	}
	maxSize := sizes[len(sizes)-1]

	var mu sync.Mutex
	results := make(map[int][]float64, len(sizes))

	errs := runtime.RunLocalCluster(runtime.Options{Ranks: 2}, func(p *runtime.Proc) {
		win := rma.Allocate(p, 2*maxSize)
		defer win.Free()
		partner := 1 - p.Rank()
		client := p.Rank() == 0
		req := core.NotifyInit(win, partner, 99, 1)
		defer req.Free()

		for _, size := range sizes {
			payload := make([]byte, size)
			var samples []float64
			for it := 0; it < warmup+reps; it++ {
				t0 := p.Now()
				if client { // paper Listing 1, as in the Sim ping-pong
					core.PutNotify(win, partner, 0, payload, 99)
					win.Flush(partner)
					req.Start()
					req.Wait()
				} else {
					req.Start()
					req.Wait()
					core.PutNotify(win, partner, maxSize, payload, 99)
					win.Flush(partner)
				}
				if client && it >= warmup {
					samples = append(samples, p.Now().Sub(t0).Micros()/2)
				}
			}
			if client {
				mu.Lock()
				results[size] = samples
				mu.Unlock()
			}
			p.Barrier()
		}
	})
	for r, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("bench: tcp ping-pong rank %d failed: %v", r, err))
		}
	}

	t := &Table{
		Name:    "tcppp",
		Title:   "Notified-put ping-pong half-RTT over TCP sockets (wall-clock us)",
		Columns: []string{"size(B)", "p50", "p90", "p99", "p99.9", "max"},
	}
	for _, size := range sizes {
		s := results[size]
		p50 := stats.Percentile(s, 50)
		p99 := stats.Percentile(s, 99)
		p999 := stats.Percentile(s, 99.9)
		t.AddRow(itoa(size),
			us(p50),
			us(stats.Percentile(s, 90)),
			us(p99),
			us(p999),
			us(stats.Percentile(s, 100)))
		t.SetMetric(fmt.Sprintf("p50_%d", size), p50)
		t.SetMetric(fmt.Sprintf("p99_%d", size), p99)
		t.SetMetric(fmt.Sprintf("p999_%d", size), p999)
		if p50 > 0 {
			// half-RTT in us, so bytes/us == MB/s of one-way goodput at the
			// median.
			t.SetMetric(fmt.Sprintf("mbps_%d", size), float64(size)/p50)
		}
	}
	t.Notes = append(t.Notes,
		"two OS-process-equivalent ranks over localhost TCP (loopback cluster); measured wall time, not the LogGP model — compare shape, not magnitude, with fig3a")
	return t
}
