package internal_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/mp"
	"repro/internal/rma"
	"repro/internal/runtime"
)

// TestSoakMixedLayers drives message passing, one-sided operations, and
// notified access concurrently on one job for many rounds — the
// cross-layer integration the individual suites don't exercise. Every
// value is checked; the test runs under both engines.
func TestSoakMixedLayers(t *testing.T) {
	const (
		ranks  = 6
		rounds = 30
	)
	for _, mode := range []exec.Mode{exec.Sim, exec.Real} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			err := runtime.Run(runtime.Options{Ranks: ranks, Mode: mode}, func(p *runtime.Proc) {
				me := p.Rank()
				right := (me + 1) % ranks
				left := (me - 1 + ranks) % ranks
				comm := mp.New(p)
				// No deferred collective Free: a rank panic during the round
				// would deadlock inside the deferred barrier instead of
				// surfacing; the window dies with the world.
				win := rma.Allocate(p, 256)
				naReq := core.NotifyInit(win, left, core.AnyTag, 1)
				rng := rand.New(rand.NewSource(int64(me) + 77))

				for round := 0; round < rounds; round++ {
					// 1) Two-sided ring exchange, size varies across the
					//    eager/rendezvous boundary.
					size := 1 + rng.Intn(12000)
					_ = size
					// Deterministic per (sender, round) so the receiver can
					// reconstruct independently of rng state divergence.
					sz := func(sender, round int) int { return 1 + (sender*131+round*977)%12000 }
					payload := func(sender, round, n int) []byte {
						b := make([]byte, n)
						for i := range b {
							b[i] = byte(sender*7 + round*3 + i)
						}
						return b
					}
					rr := comm.Irecv(make([]byte, 12001), left, round)
					comm.Send(right, round, payload(me, round, sz(me, round)))
					st := comm.WaitRecv(rr)
					if st.Count != sz(left, round) {
						panic(fmt.Sprintf("rank %d round %d: mp size %d want %d", me, round, st.Count, sz(left, round)))
					}

					// 2) One-sided: fetch-and-op counter on rank 0, put a
					//    marker into the right neighbor's window.
					win.FetchAndOp(0, 0, 1)
					var marker [8]byte
					binary.LittleEndian.PutUint64(marker[:], uint64(me*1000+round))
					win.Put(right, 8+8*me, marker[:])
					win.Flush(right)

					// 3) Notified access: tagged ring notification.
					core.PutNotify(win, right, 8+8*ranks, payload(me, round, 16), round%core.MaxTag)
					naReq.Start()
					nst := naReq.Wait()
					if nst.Source != left || nst.Tag != round%core.MaxTag {
						panic(fmt.Sprintf("rank %d round %d: na status %+v", me, round, nst))
					}
					got := win.Buffer()[8+8*ranks : 8+8*ranks+16]
					if !bytes.Equal(got, payload(left, round, 16)) {
						panic(fmt.Sprintf("rank %d round %d: na payload mismatch", me, round))
					}

					// Verify the put marker BEFORE the barrier: the left
					// neighbor flushed it before its notified put (FIFO), and
					// cannot overwrite it until this round's barrier — after
					// the barrier it may already be in the next round.
					if round%7 == 3 {
						v := binary.LittleEndian.Uint64(win.Buffer()[8+8*left:])
						if v != uint64(left*1000+round) {
							panic(fmt.Sprintf("rank %d round %d: marker %d", me, round, v))
						}
					}

					// Settle before the next round so window slots can be
					// reused safely.
					p.Barrier()
				}
				p.Barrier()
				if me == 0 {
					total := binary.LittleEndian.Uint64(win.Buffer()[:8])
					if total != uint64(ranks*rounds) {
						panic(fmt.Sprintf("counter %d want %d", total, ranks*rounds))
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSoakLockAllSharedCounters hammers shared locks and atomics from all
// ranks (passive target, no target CPU).
func TestSoakLockAllSharedCounters(t *testing.T) {
	for _, mode := range []exec.Mode{exec.Sim, exec.Real} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const ranks = 4
			const iters = 10
			err := runtime.Run(runtime.Options{Ranks: ranks, Mode: mode}, func(p *runtime.Proc) {
				win := rma.Allocate(p, 8*ranks)
				defer win.Free()
				for i := 0; i < iters; i++ {
					win.LockAll()
					for tgt := 0; tgt < ranks; tgt++ {
						win.FetchAndOp(tgt, 8*p.Rank(), 1)
					}
					win.UnlockAll()
				}
				win.Sync()
				p.Barrier()
				for r := 0; r < ranks; r++ {
					if v := win.Load64(8 * r); v != iters {
						t.Errorf("rank %d: slot %d = %d want %d", p.Rank(), r, v, iters)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
