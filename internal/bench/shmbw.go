package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rma"
	"repro/internal/runtime"
	"repro/internal/shmfab"
)

// ShmBW measures aggregate notified-put bandwidth over the cross-process
// shared-memory transport (heap-segment cluster: the same ring protocol
// the launcher runs over mapped files, minus the mmap) against the
// in-process Real engine as the reference: the shm rows must stay within
// a small factor of the in-memory fabric for the transport to be worth
// auto-selecting on one host. Two payload sizes pin both ring paths —
// 32 B rides inline in a 64 B ring entry, 4 KiB takes the bulk region —
// and the transport counters verify each row exercised the path it
// claims (inline rows move zero bulk bytes).
func ShmBW() *Table {
	iters, warmup, flushEvery := 4000, 400, 32
	if Quick {
		iters, warmup = 400, 50
	}

	t := &Table{
		Name:  "shmbw",
		Title: "Shared-memory segment ring vs in-process Real engine: aggregate put bandwidth (2 ranks)",
		Columns: []string{"engine", "payload-B", "MB/s", "entries",
			"bulk-MB", "frag", "stalls"},
	}
	for _, size := range []int{32, 4096} {
		real := bwRun(size, iters, warmup, flushEvery, realBWRunner)
		shm := bwRun(size, iters, warmup, flushEvery, shmBWRunner)
		t.AddRow("real", itoa(size), f2(real.mbps), "-", "-", "-", "-")
		t.AddRow("shm", itoa(size), f2(shm.mbps), fmt.Sprintf("%d", shm.entries),
			f2(float64(shm.bulkBytes)/1e6), fmt.Sprintf("%d", shm.frag),
			fmt.Sprintf("%d", shm.stalls))
		suffix := fmt.Sprintf("_%dB", size)
		t.SetMetric("mbps_real"+suffix, real.mbps)
		t.SetMetric("mbps_shm"+suffix, shm.mbps)
		ratio := 0.0
		if shm.mbps > 0 {
			ratio = real.mbps / shm.mbps
		}
		t.SetMetric("real_over_shm"+suffix, ratio)
	}
	t.Notes = append(t.Notes,
		"both ranks storm notified puts at each other concurrently (flush every 32); MB/s counts both directions' payload over the slower direction's wall time",
		"32 B rides the compact inline entry encoding (zero bulk bytes); 4 KiB goes through the bulk region, entries publishing only the slot",
		"real_over_shm_* is the acceptance ratio: the target is 2x, the structural floor — shm copies each payload twice (user buffer into bulk, bulk into window) where the in-process zero-copy path moves it once")
	return t
}

type bwResult struct {
	mbps      float64
	entries   uint64
	bulkBytes uint64
	frag      uint64
	stalls    uint64
}

// bwRunner executes body as a 2-rank job on some engine, returning one
// error per rank.
type bwRunner func(body func(p *runtime.Proc)) []error

func realBWRunner(body func(p *runtime.Proc)) []error {
	return []error{runtime.Run(runtime.Options{Ranks: 2, Mode: exec.Real}, body)}
}

func shmBWRunner(body func(p *runtime.Proc)) []error {
	return runtime.RunLocalShmCluster(runtime.Options{Ranks: 2}, body)
}

// bwRun runs one bidirectional notified-put storm on the given engine and
// reports aggregate bandwidth plus (when the link is the segment ring)
// the transport counters.
func bwRun(size, iters, warmup, flushEvery int, run bwRunner) bwResult {
	var mu sync.Mutex
	var res bwResult
	var elapsed time.Duration

	errs := run(func(p *runtime.Proc) {
		win := rma.Allocate(p, size)
		defer win.Free()
		partner := 1 - p.Rank()
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(p.Rank() + i)
		}
		storm := func(count int) {
			req := core.NotifyInit(win, partner, 7, count)
			defer req.Free()
			req.Start()
			for i := 0; i < count; i++ {
				core.PutNotify(win, partner, 0, payload, 7)
				if (i+1)%flushEvery == 0 {
					win.Flush(partner)
				}
			}
			win.Flush(partner)
			req.Wait() // absorb the partner's stream before leaving
		}
		storm(warmup)
		p.Barrier()
		t0 := time.Now()
		storm(iters)
		p.Barrier() // both directions complete before the clock stops
		d := time.Since(t0)

		mu.Lock()
		if p.Rank() == 0 {
			elapsed = d
		}
		if m, ok := p.World().Fabric().NetStatsSource().(interface{ ReadStats() shmfab.Stats }); ok {
			st := m.ReadStats()
			res.entries += st.EntriesSent
			res.bulkBytes += st.BulkBytesSent
			res.frag += st.FragFrames
			res.stalls += st.SendStalls
		}
		mu.Unlock()
	})
	for r, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("bench: shmbw rank %d failed: %v", r, err))
		}
	}
	res.mbps = 2 * float64(iters) * float64(size) / elapsed.Seconds() / 1e6
	return res
}
