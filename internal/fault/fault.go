// Package fault is the deterministic fault-injection plane for the
// simulated fabric: a seed-driven decision engine the NIC delivery path
// consults once per wire packet to decide whether that packet is dropped,
// duplicated, delayed (reordered), or bit-corrupted, and whether a whole
// rank has crashed or hung. Faults are configured with a Plan — rate-based
// probabilities, scripted per-packet rules ("drop the 3rd put from rank 1
// to rank 0"), and rank-level failures — so every failure scenario is
// reproducible from its seed.
//
// Decisions are pure functions of (seed, origin, target, per-pair packet
// index): under the deterministic Sim engine the same program sees the
// same faults on every run, and under the Real engine two packets of one
// pair never share a decision no matter how goroutines interleave. The
// package knows nothing about the fabric's packet types; the fabric's
// reliable-delivery layer (internal/fabric/reliable.go) translates
// Decisions into wire behavior and repairs the damage.
package fault

import (
	"sync"
	"sync/atomic"
)

// Any is the wildcard origin/target for scripted rules.
const Any = -1

// Action is a scripted rule's effect on a matching packet.
type Action int

const (
	// Drop discards the packet.
	Drop Action = iota
	// Duplicate delivers the packet twice.
	Duplicate
	// Corrupt flips one payload bit, to be caught by the checksum.
	Corrupt
	// Delay holds the packet for Rule.Delay nanoseconds, reordering it
	// behind later traffic of its pair.
	Delay
)

func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	}
	return "unknown"
}

// RankMode classifies a rank-level failure.
type RankMode int

const (
	// Crash fail-stops the rank: nothing it sends leaves, nothing sent to
	// it arrives (the NIC is gone in both directions).
	Crash RankMode = iota
	// Hang freezes the rank's sends only: packets *to* a hung rank still
	// arrive (its NIC accepts them) but nothing comes back — the failure
	// mode that distinguishes a dead process from a dead link.
	Hang
)

func (m RankMode) String() string {
	if m == Crash {
		return "crash"
	}
	return "hang"
}

// Rule scripts a deterministic fault on specific packets.
type Rule struct {
	// Origin and Target select the pair; Any matches every rank.
	Origin, Target int
	// Class matches the packet class string ("put", "ack", "ctrl", …);
	// empty matches every class.
	Class string
	// Nth applies the action to the Nth matching packet only (1-based,
	// counted across the rule's lifetime); 0 applies it to every match.
	Nth int
	// Action is what happens to the matching packet.
	Action Action
	// Delay is the hold time in nanoseconds for Action == Delay.
	Delay int64
}

func (r Rule) matches(origin, target int, class string) bool {
	return (r.Origin == Any || r.Origin == origin) &&
		(r.Target == Any || r.Target == target) &&
		(r.Class == "" || r.Class == class)
}

// RankFault schedules a rank-level failure.
type RankFault struct {
	Rank int
	Mode RankMode
	// AfterSends lets the rank originate this many packets before the
	// failure takes effect; 0 fails it from the start.
	AfterSends int
}

// Plan is a complete, reproducible fault scenario.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs with the same
	// seed and the same per-pair packet sequence fault identically.
	Seed uint64

	// Drop, Duplicate, Corrupt, and Reorder are per-packet probabilities
	// in [0,1], evaluated independently per packet.
	Drop      float64
	Duplicate float64
	Corrupt   float64
	Reorder   float64
	// ReorderDelay is how long a reordered packet is held, in nanoseconds
	// (default 10µs: several wire latencies, so later traffic overtakes).
	ReorderDelay int64

	// Rules are scripted per-packet faults, evaluated before the rates.
	Rules []Rule
	// Ranks are scheduled rank-level failures.
	Ranks []RankFault
}

const defaultReorderDelay = 10_000 // 10µs

// Decision is the injector's verdict on one wire packet.
type Decision struct {
	Drop      bool
	Duplicate bool
	Corrupt   bool
	// CorruptPos selects which payload byte to flip (mod payload length).
	CorruptPos uint64
	// DelayNs holds the packet this long before delivery (reordering).
	DelayNs int64
	// DownOrigin/DownTarget report that the drop was a rank failure, not
	// a lossy wire (so the caller can account it separately).
	RankDown bool
}

// Stats counts injected faults.
type Stats struct {
	Dropped     int64 // packets discarded by rate or rule
	Duplicated  int64 // packets delivered twice
	Corrupted   int64 // packets with a flipped payload byte
	Delayed     int64 // packets held for reordering
	RankDropped int64 // packets absorbed by a crashed/hung rank
}

// Injector evaluates a Plan. One Injector serves a whole fabric; it is
// safe for concurrent use from delivery workers.
type Injector struct {
	plan Plan

	mu        sync.Mutex
	pairSeq   map[[2]int]uint64 // per-(origin,target) packet index
	ruleCount []uint64          // per-rule match counter (Nth)
	sends     map[int]uint64    // per-origin originated-packet counter
	down      map[int]RankMode
	downHook  func(rank int, mode RankMode)

	dropped     atomic.Int64
	duplicated  atomic.Int64
	corrupted   atomic.Int64
	delayed     atomic.Int64
	rankDropped atomic.Int64
}

// NewInjector compiles a plan. The plan is copied; later mutations of the
// caller's value have no effect.
func NewInjector(p Plan) *Injector {
	if p.ReorderDelay == 0 {
		p.ReorderDelay = defaultReorderDelay
	}
	in := &Injector{
		plan:      p,
		pairSeq:   make(map[[2]int]uint64),
		ruleCount: make([]uint64, len(p.Rules)),
		sends:     make(map[int]uint64),
		down:      make(map[int]RankMode),
	}
	for _, rf := range p.Ranks {
		if rf.AfterSends == 0 {
			in.down[rf.Rank] = rf.Mode
		}
	}
	return in
}

// SetDownHook registers fn to be called (outside the injector lock) every
// time a rank transitions into a failure mode — scheduled AfterSends
// activation in Decide, or an explicit Crash/Hang call. Ranks already down
// when the hook is installed are reported immediately, so transports that
// must mirror rank failure into their own liveness machinery (e.g. the
// shmfab heartbeat word) never miss a transition that happened during
// plan compilation.
func (in *Injector) SetDownHook(fn func(rank int, mode RankMode)) {
	in.mu.Lock()
	in.downHook = fn
	pending := make(map[int]RankMode, len(in.down))
	for r, m := range in.down {
		pending[r] = m
	}
	in.mu.Unlock()
	if fn != nil {
		for r, m := range pending {
			fn(r, m)
		}
	}
}

// Crash fail-stops a rank immediately (both directions go dark). Tests use
// it to kill a rank mid-run.
func (in *Injector) Crash(rank int) {
	in.mu.Lock()
	in.down[rank] = Crash
	hook := in.downHook
	in.mu.Unlock()
	if hook != nil {
		hook(rank, Crash)
	}
}

// Hang freezes a rank's sends immediately (inbound still arrives).
func (in *Injector) Hang(rank int) {
	in.mu.Lock()
	var hook func(int, RankMode)
	if _, already := in.down[rank]; !already {
		in.down[rank] = Hang
		hook = in.downHook
	}
	in.mu.Unlock()
	if hook != nil {
		hook(rank, Hang)
	}
}

// Down reports whether rank has a scheduled-and-active failure, and its
// mode.
func (in *Injector) Down(rank int) (RankMode, bool) {
	in.mu.Lock()
	m, ok := in.down[rank]
	in.mu.Unlock()
	return m, ok
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Dropped:     in.dropped.Load(),
		Duplicated:  in.duplicated.Load(),
		Corrupted:   in.corrupted.Load(),
		Delayed:     in.delayed.Load(),
		RankDropped: in.rankDropped.Load(),
	}
}

// Decide returns the verdict for the next wire packet from origin to
// target of the given class. Every call advances the pair's packet index,
// so decisions are order-dependent within a pair (deterministic under Sim)
// but independent across pairs.
func (in *Injector) Decide(origin, target int, class string) Decision {
	in.mu.Lock()
	// Rank-failure activation: this packet is origin's (count)th send.
	count := in.sends[origin] + 1
	in.sends[origin] = count
	var activated func()
	for _, rf := range in.plan.Ranks {
		if rf.Rank == origin && rf.AfterSends > 0 && count > uint64(rf.AfterSends) {
			if _, already := in.down[origin]; !already {
				in.down[origin] = rf.Mode
				if hook, mode := in.downHook, rf.Mode; hook != nil {
					activated = func() { hook(origin, mode) }
				}
			}
		}
	}
	if _, ok := in.down[origin]; ok {
		in.mu.Unlock()
		if activated != nil {
			activated()
		}
		in.rankDropped.Add(1)
		return Decision{Drop: true, RankDown: true}
	}
	if m, ok := in.down[target]; ok && m == Crash {
		in.mu.Unlock()
		in.rankDropped.Add(1)
		return Decision{Drop: true, RankDown: true}
	}

	var d Decision
	// Scripted rules fire before (and instead of) the rates.
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if !r.matches(origin, target, class) {
			continue
		}
		in.ruleCount[i]++
		if r.Nth != 0 && in.ruleCount[i] != uint64(r.Nth) {
			continue
		}
		switch r.Action {
		case Drop:
			d.Drop = true
		case Duplicate:
			d.Duplicate = true
		case Corrupt:
			d.Corrupt = true
		case Delay:
			d.DelayNs = r.Delay
		}
		in.mu.Unlock()
		in.account(&d)
		return d
	}

	pr := [2]int{origin, target}
	seq := in.pairSeq[pr]
	in.pairSeq[pr] = seq + 1
	in.mu.Unlock()

	p := &in.plan
	if p.Drop > 0 && in.draw(origin, target, seq, 0) < p.Drop {
		d.Drop = true
	} else {
		// A dropped packet needs no further verdicts.
		if p.Duplicate > 0 && in.draw(origin, target, seq, 1) < p.Duplicate {
			d.Duplicate = true
		}
		if p.Corrupt > 0 && in.draw(origin, target, seq, 2) < p.Corrupt {
			d.Corrupt = true
			d.CorruptPos = mix(p.Seed, origin, target, seq, 3)
		}
		if p.Reorder > 0 && in.draw(origin, target, seq, 4) < p.Reorder {
			d.DelayNs = p.ReorderDelay
		}
	}
	in.account(&d)
	return d
}

func (in *Injector) account(d *Decision) {
	if d.Drop {
		in.dropped.Add(1)
	}
	if d.Duplicate {
		in.duplicated.Add(1)
	}
	if d.Corrupt {
		in.corrupted.Add(1)
	}
	if d.DelayNs > 0 {
		in.delayed.Add(1)
	}
}

// draw maps (seed, origin, target, seq, salt) to a uniform float in [0,1).
// Hash-based rather than a shared sequential PRNG so a pair's decisions do
// not depend on how other pairs' packets interleave.
func (in *Injector) draw(origin, target int, seq, salt uint64) float64 {
	return float64(mix(in.plan.Seed, origin, target, seq, salt)>>11) / (1 << 53)
}

func mix(seed uint64, origin, target int, seq, salt uint64) uint64 {
	h := splitmix64(seed ^ splitmix64(uint64(uint32(origin))<<32|uint64(uint32(target))))
	return splitmix64(h ^ splitmix64(seq<<8|salt))
}

// splitmix64 is the finalizer from Steele et al.'s SplitMix generator: a
// cheap, well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
