package fabric

import (
	"fmt"
	grt "runtime"
	"sync"
	"testing"

	"repro/internal/exec"
)

// BenchmarkMsgMatch tracks the message dispatch engine's two load axes:
// a hot-class poll miss with K messages of another class queued (depth),
// and a send-to-self round trip with K waiters parked on K other classes
// (waiters). Both must stay flat in K; the seed's shared predicate-scan
// queue grew linearly on both. The naperf `msgmatch` experiment reports
// the same measurements with the seed comparison.
func BenchmarkMsgMatch(b *testing.B) {
	const (
		hot  = 900
		cold = 901
	)
	for _, k := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("depth-%d", k), func(b *testing.B) {
			env := exec.New(exec.Real)
			f := New(env, DefaultConfig(1))
			defer f.Close()
			err := env.Run(1, func(p *exec.Proc) {
				nic := f.NIC(0)
				for i := 0; i < k; i++ {
					nic.PostMsg(p, 0, cold, nil, nil, false)
				}
				for nic.MsgDepth() < k {
					grt.Gosched()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := nic.PollMsgClass(hot); ok {
						b.Error("unexpected hot message")
						return
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
		b.Run(fmt.Sprintf("waiters-%d", k), func(b *testing.B) {
			env := exec.New(exec.Real)
			f := New(env, DefaultConfig(1))
			defer f.Close()
			err := env.Run(1, func(p *exec.Proc) {
				nic := f.NIC(0)
				var wg sync.WaitGroup
				for w := 0; w < k; w++ {
					wg.Add(1)
					go func(class int) {
						defer wg.Done()
						nic.WaitMsgClass(p, class)
					}(cold + 1 + w)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nic.PostMsg(p, 0, hot, nil, nil, false)
					for {
						if _, ok := nic.PollMsgClass(hot); ok {
							break
						}
						grt.Gosched()
					}
				}
				b.StopTimer()
				for w := 0; w < k; w++ {
					nic.PostMsg(p, 0, cold+1+w, nil, nil, false)
				}
				wg.Wait()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
