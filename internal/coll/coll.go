// Package coll provides the collective operations the applications and
// benchmarks need — dissemination barrier, binomial broadcast, and binomial
// reduction — built on the message-passing layer. Reduce is the stand-in
// for the vendor-optimized MPI_Reduce the paper's Figure 4c compares
// against.
package coll

import (
	"encoding/binary"
	"math"

	"repro/internal/mp"
)

// Collective tags live far above application tags to avoid collisions; a
// per-communicator epoch keeps successive collectives apart.
const (
	tagBarrier = 1 << 20
	tagBcast   = 2 << 20
	tagReduce  = 3 << 20
)

// Barrier blocks until all ranks have entered (dissemination algorithm,
// ceil(log2 n) rounds).
func Barrier(c *mp.Comm) {
	p := c.Proc()
	n := p.N()
	me := p.Rank()
	for k, round := 1, 0; k < n; k, round = k*2, round+1 {
		to := (me + k) % n
		from := (me - k + n) % n
		c.Send(to, tagBarrier+round, nil)
		c.Recv(nil, from, tagBarrier+round)
	}
}

// Bcast broadcasts buf from root to all ranks (binomial tree).
func Bcast(c *mp.Comm, root int, buf []byte) {
	p := c.Proc()
	n := p.N()
	if n == 1 {
		return
	}
	// Virtual rank relative to the root.
	vr := (p.Rank() - root + n) % n
	if vr != 0 {
		// Receive from the parent: clear the lowest set bit.
		parent := (vr&(vr-1) + root) % n
		c.Recv(buf, parent, tagBcast)
	}
	// Forward to children: set bits above the lowest set bit (or all bits
	// for the root).
	low := vr & (-vr)
	if vr == 0 {
		low = nextPow2(n)
	}
	for k := low >> 1; k > 0; k >>= 1 {
		child := vr | k
		if child != vr && child < n {
			c.Send((child+root)%n, tagBcast, buf)
		}
	}
}

// Reduce combines vals element-wise (sum) onto root using a binomial tree
// and returns the result at root (nil elsewhere).
func Reduce(c *mp.Comm, root int, vals []float64) []float64 {
	p := c.Proc()
	n := p.N()
	acc := append([]float64(nil), vals...)
	if n == 1 {
		return acc
	}
	vr := (p.Rank() - root + n) % n
	buf := make([]byte, 8*len(vals))
	// Binomial gather: in round k, vranks with bit k set send to vrank-k.
	for k := 1; k < n; k <<= 1 {
		if vr&k != 0 {
			c.Send((vr-k+root)%n, tagReduce, encode(acc))
			return nil
		}
		if vr+k < n {
			c.Recv(buf, (vr+k+root)%n, tagReduce)
			for i := range acc {
				acc[i] += math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
			}
		}
	}
	return acc
}

func encode(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func nextPow2(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k
}
