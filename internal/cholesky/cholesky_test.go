package cholesky

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/runtime"
	"repro/internal/simtime"
)

func TestTileIDRoundTrip(t *testing.T) {
	id := 0
	for j := 0; j < 50; j++ {
		for k := 0; k <= j; k++ {
			if got := tileID(j, k); got != id {
				t.Fatalf("tileID(%d,%d) = %d, want %d", j, k, got, id)
			}
			gj, gk := tileCoord(id)
			if gj != j || gk != k {
				t.Fatalf("tileCoord(%d) = (%d,%d), want (%d,%d)", id, gj, gk, j, k)
			}
			id++
		}
	}
}

func TestInputMatrixIsSPDAndDeterministic(t *testing.T) {
	m := InputMatrix(4, 8)
	if _, err := linalg.ReferenceCholesky(m); err != nil {
		t.Fatalf("input not SPD: %v", err)
	}
	m2 := InputMatrix(4, 8)
	for k := range m.Data {
		if m.Data[k] != m2.Data[k] {
			t.Fatal("InputMatrix not deterministic")
		}
	}
	// Symmetry.
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
}

func TestInputTileMatchesMatrix(t *testing.T) {
	T, b := 3, 4
	m := InputMatrix(T, b)
	for ti := 0; ti < T; ti++ {
		for tj := 0; tj <= ti; tj++ {
			tile := inputTile(T, b, ti, tj)
			want := linalg.ExtractTile(m, b, ti, tj)
			if d := linalg.TileMaxAbsDiff(tile, want); d != 0 {
				t.Fatalf("tile (%d,%d) differs by %g", ti, tj, d)
			}
		}
	}
}

func TestAllVariantsValidate(t *testing.T) {
	for _, mode := range []exec.Mode{exec.Sim, exec.Real} {
		for _, v := range Variants {
			v, mode := v, mode
			t.Run(mode.String()+"/"+v.String(), func(t *testing.T) {
				o := Options{Tiles: 6, B: 8, Variant: v, Validate: true}
				err := runtime.Run(runtime.Options{Ranks: 3, Mode: mode}, func(p *runtime.Proc) {
					res := Run(p, o)
					if !res.Valid {
						t.Errorf("rank %d: max error %g", p.Rank(), res.MaxError)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestWeakScalingShape(t *testing.T) {
	// One tile row per rank (the paper's Fig 5 configuration, T = P,
	// b = 32 -> 8 KB transfers). NA must beat MP, and One Sided must trail.
	times := map[Variant]simtime.Duration{}
	const ranks = 8
	for _, v := range Variants {
		v := v
		err := runtime.Run(runtime.Options{Ranks: ranks, Mode: exec.Sim}, func(p *runtime.Proc) {
			res := Run(p, Options{Tiles: ranks, B: 32, Variant: v})
			if p.Rank() == 0 {
				times[v] = res.Elapsed
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(times[NA] < times[MP]) {
		t.Errorf("NA (%v) should beat MP (%v)", times[NA], times[MP])
	}
	if !(times[NA] < times[OneSided]) {
		t.Errorf("NA (%v) should beat OneSided (%v)", times[NA], times[OneSided])
	}
}

func TestMoreTilesThanRanks(t *testing.T) {
	// Row-cyclic distribution with T > P.
	for _, v := range Variants {
		v := v
		err := runtime.Run(runtime.Options{Ranks: 3, Mode: exec.Sim}, func(p *runtime.Proc) {
			res := Run(p, Options{Tiles: 8, B: 4, Variant: v, Validate: true})
			if !res.Valid {
				t.Errorf("variant %v rank %d invalid (err %g)", v, p.Rank(), res.MaxError)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSingleRank(t *testing.T) {
	err := runtime.Run(runtime.Options{Ranks: 1, Mode: exec.Sim}, func(p *runtime.Proc) {
		res := Run(p, Options{Tiles: 4, B: 4, Variant: NA, Validate: true})
		if !res.Valid {
			t.Errorf("single-rank factorization invalid")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() simtime.Duration {
		var d simtime.Duration
		err := runtime.Run(runtime.Options{Ranks: 4, Mode: exec.Sim}, func(p *runtime.Proc) {
			res := Run(p, Options{Tiles: 4, B: 8, Variant: NA})
			if p.Rank() == 0 {
				d = res.Elapsed
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestGFLOPSReported(t *testing.T) {
	err := runtime.Run(runtime.Options{Ranks: 2, Mode: exec.Sim}, func(p *runtime.Proc) {
		res := Run(p, Options{Tiles: 2, B: 8, Variant: NA})
		if p.Rank() == 0 && res.GFLOPS <= 0 {
			t.Errorf("GFLOPS = %v", res.GFLOPS)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVariantString(t *testing.T) {
	if MP.String() != "mp" || OneSided.String() != "onesided" || NA.String() != "na" {
		t.Fatal("variant names")
	}
}
