package mp

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/runtime"
)

// TestPostedOrderMatching: MPI requires that when several posted receives
// match an incoming message, the one posted FIRST wins.
func TestPostedOrderMatching(t *testing.T) {
	runBoth(t, 2, nil, func(p *runtime.Proc, c *Comm) {
		if p.Rank() == 1 {
			bufA := make([]byte, 1)
			bufB := make([]byte, 1)
			reqA := c.Irecv(bufA, 0, 5) // posted first
			reqB := c.Irecv(bufB, 0, 5) // posted second
			p.Barrier()
			c.WaitRecv(reqA)
			c.WaitRecv(reqB)
			if bufA[0] != 1 || bufB[0] != 2 {
				t.Errorf("posted order violated: A=%d B=%d (want 1, 2)", bufA[0], bufB[0])
			}
		} else {
			p.Barrier()
			c.Send(1, 5, []byte{1})
			c.Send(1, 5, []byte{2})
		}
	})
}

// TestWildcardPostedBeforeSpecific: a wildcard receive posted first must
// capture the first message even if a later-posted specific receive also
// matches.
func TestWildcardPostedBeforeSpecific(t *testing.T) {
	runBoth(t, 2, nil, func(p *runtime.Proc, c *Comm) {
		if p.Rank() == 1 {
			bufAny := make([]byte, 1)
			bufTag := make([]byte, 1)
			reqAny := c.Irecv(bufAny, AnySource, AnyTag)
			reqTag := c.Irecv(bufTag, 0, 9)
			p.Barrier()
			c.WaitRecv(reqAny)
			c.WaitRecv(reqTag)
			if bufAny[0] != 1 || bufTag[0] != 2 {
				t.Errorf("wildcard-first violated: any=%d tag=%d", bufAny[0], bufTag[0])
			}
		} else {
			p.Barrier()
			c.Send(1, 9, []byte{1})
			c.Send(1, 9, []byte{2})
		}
	})
}

// TestUnexpectedBeforePosted: messages already in the unexpected queue
// match a new Irecv in arrival order before any network progress.
func TestUnexpectedBeforePosted(t *testing.T) {
	err := runtime.Run(runtime.Options{Ranks: 2, Mode: exec.Sim}, func(p *runtime.Proc) {
		c := New(p)
		if p.Rank() == 0 {
			c.Send(1, 3, []byte{10})
			c.Send(1, 3, []byte{20})
			p.Barrier()
		} else {
			p.Barrier() // both messages queued unexpectedly
			// Force them into the UQ via a probe.
			c.Probe(0, 3)
			if c.UnexpectedDepth() == 0 {
				t.Fatal("UQ empty after probe")
			}
			var a, b [1]byte
			c.WaitRecv(c.Irecv(a[:], 0, 3))
			c.WaitRecv(c.Irecv(b[:], 0, 3))
			if a[0] != 10 || b[0] != 20 {
				t.Errorf("UQ order: %d then %d", a[0], b[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
