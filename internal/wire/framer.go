package wire

// Stream framing helpers for the batched TCP data plane: AppendFrame
// serializes many frames back to back into one flush buffer (tx
// coalescing), and Framer turns a large buffered read into many decoded
// frames without a per-frame allocation or syscall (rx coalescing).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// LengthPrefix is the size of the uint32 length prefix preceding every
// frame body on a stream.
const LengthPrefix = 4

// AppendFrame serializes fr with its stream length prefix onto dst and
// returns the extended slice. Appending several frames to the same buffer
// yields a byte sequence a Framer parses back into the same frames.
func AppendFrame(dst []byte, fr *Frame) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = Append(dst, fr)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-LengthPrefix))
	return dst
}

// ErrDirectMismatch reports that a frame offered to ReadDirect does not fit
// the destination buffer; nothing has been consumed and the caller should
// fall back to the buffered path.
var ErrDirectMismatch = errors.New("wire: direct-landing size mismatch")

// Framer incrementally splits a byte stream into length-prefixed frame
// bodies. The caller alternates Next (until it reports it needs more
// bytes) with Fill (one Read into the internal buffer), so a single
// syscall can yield many frames; frame bodies returned by Next alias the
// internal buffer and are valid only until the next Fill or ReadDirect.
type Framer struct {
	buf  []byte
	r, w int // unconsumed bytes live in buf[r:w]
}

// NewFramer returns a framer whose initial buffer holds size bytes (it
// grows as needed to fit the largest frame seen).
func NewFramer(size int) *Framer {
	if size < 512 {
		size = 512
	}
	return &Framer{buf: make([]byte, size)}
}

// Buffered returns the number of unconsumed bytes currently held.
func (f *Framer) Buffered() int { return f.w - f.r }

// pendingLen returns the next frame's body length if its prefix is
// buffered (-1 otherwise), validating the prefix.
func (f *Framer) pendingLen() (int, error) {
	if f.Buffered() < LengthPrefix {
		return -1, nil
	}
	n := int(binary.LittleEndian.Uint32(f.buf[f.r:]))
	if n == 0 || n > MaxFrame {
		return -1, fmt.Errorf("wire: bad frame length %d", n)
	}
	return n, nil
}

// compact moves the unconsumed bytes to the front of the buffer.
func (f *Framer) compact() {
	if f.r > 0 {
		copy(f.buf, f.buf[f.r:f.w])
		f.w -= f.r
		f.r = 0
	}
}

// Fill compacts the buffer, grows it if the next frame is known not to
// fit, and performs one Read from r. It returns the byte count read;
// callers count calls to observe frames-per-syscall coalescing.
func (f *Framer) Fill(r io.Reader) (int, error) {
	f.compact()
	if n, err := f.pendingLen(); err != nil {
		return 0, err
	} else if need := LengthPrefix + n; n >= 0 && need > len(f.buf) {
		grown := make([]byte, need)
		copy(grown, f.buf[:f.w])
		f.buf = grown
	} else if f.w == len(f.buf) {
		// Prefix not yet complete but the buffer is full (tiny buffer).
		grown := make([]byte, 2*len(f.buf))
		copy(grown, f.buf[:f.w])
		f.buf = grown
	}
	n, err := r.Read(f.buf[f.w:])
	f.w += n
	if n > 0 {
		return n, nil // bytes first; a terminal error resurfaces next call
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return 0, err
}

// PendingKind peeks the next frame's kind byte, which is available as soon
// as the length prefix plus two header bytes are buffered. Receive loops
// use it to decide whether to keep the buffer small for a direct landing
// (FillSmall) before the full header has arrived.
func (f *Framer) PendingKind() (Kind, bool) {
	if f.Buffered() < LengthPrefix+2 {
		return KindInvalid, false
	}
	return Kind(f.buf[f.r+LengthPrefix+1]), true
}

// FillSmall is Fill without the grow-to-frame step: the buffer grows only
// when completely full (doubling). Receive loops use it while the pending
// frame is a direct-landing candidate, where growing the internal buffer
// to the full frame would defeat the point; ReadDirect uses it for header
// peeking.
func (f *Framer) FillSmall(r io.Reader) error { return f.fillSmall(r) }

// fillSmall is Fill without the grow-to-frame step, for ReadDirect's
// header peeking: it only ever needs a few dozen bytes, and growing the
// buffer to the full frame would defeat direct landing.
func (f *Framer) fillSmall(r io.Reader) error {
	f.compact()
	if f.w == len(f.buf) {
		grown := make([]byte, 2*len(f.buf))
		copy(grown, f.buf[:f.w])
		f.buf = grown
	}
	n, err := r.Read(f.buf[f.w:])
	f.w += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// Next returns the next complete frame body, or nil when more bytes are
// needed (call Fill). The returned slice aliases the internal buffer.
func (f *Framer) Next() ([]byte, error) {
	n, err := f.pendingLen()
	if err != nil {
		return nil, err
	}
	if n < 0 || f.Buffered() < LengthPrefix+n {
		return nil, nil
	}
	body := f.buf[f.r+LengthPrefix : f.r+LengthPrefix+n]
	f.r += LengthPrefix + n
	return body, nil
}

// PeekHeader decodes the next frame's fixed header without consuming it,
// so the receive loop can route large frames to a direct-landing buffer
// before their payload is buffered. ok is false when the header is not yet
// fully buffered (Fill and retry); a decode failure is a stream error.
func (f *Framer) PeekHeader(fr *Frame) (ok bool, err error) {
	n, err := f.pendingLen()
	if err != nil {
		return false, err
	}
	if n < 0 || f.Buffered() < LengthPrefix+fixedHeaderLen {
		return false, nil
	}
	if n < fixedHeaderLen {
		return false, ErrTruncated
	}
	if err := decodeFixed(f.buf[f.r+LengthPrefix:f.r+LengthPrefix+fixedHeaderLen], fr); err != nil {
		return false, err
	}
	return true, nil
}

// Direct is an in-progress direct landing: the frame's header and section
// prefixes have been consumed and the data section is filling dst across
// as many Fill calls as the reader needs. It exists so a nonblocking
// receive loop can park a half-landed frame when the reader would block
// and resume it on the next readiness event.
type Direct struct {
	f      *Framer
	dst    []byte
	filled int
}

// StartDirect begins landing the next frame's data section in dst. The
// frame's fixed header plus both section prefixes must be buffered; when
// they are not, StartDirect returns (nil, nil) and the caller should
// FillSmall and retry. The frame must carry exactly a data section of
// len(dst) bytes (no payload, no string table); on ErrDirectMismatch
// nothing has been consumed and the caller can fall back to Next/Fill.
// Any already-buffered data bytes are copied into dst immediately; drive
// the rest with Direct.Fill.
func (f *Framer) StartDirect(dst []byte) (*Direct, error) {
	const want = LengthPrefix + fixedHeaderLen + 4 + 4
	if f.Buffered() < want {
		return nil, nil
	}
	total, err := f.pendingLen()
	if err != nil {
		return nil, err
	}
	body := f.buf[f.r+LengthPrefix:]
	plen := int(binary.LittleEndian.Uint32(body[fixedHeaderLen:]))
	dlen := int(binary.LittleEndian.Uint32(body[fixedHeaderLen+4:]))
	if plen != 0 || dlen != len(dst) || total != fixedHeaderLen+4+4+dlen+2 {
		return nil, ErrDirectMismatch
	}
	f.r += want
	d := &Direct{f: f, dst: dst}
	have := f.Buffered()
	if have > dlen {
		have = dlen
	}
	copy(dst, f.buf[f.r:f.r+have])
	f.r += have
	d.filled = have
	return d, nil
}

// Fill makes progress on the landing, reading the remaining data bytes
// from r straight into dst and then the 2-byte empty-string-table trailer
// into the framer's buffer. done reports the frame fully consumed; when
// done is false the returned error says why the reader stopped (a
// would-block sentinel from a nonblocking reader means park and resume).
func (d *Direct) Fill(r io.Reader) (done bool, err error) {
	f := d.f
	for d.filled < len(d.dst) {
		n, err := r.Read(d.dst[d.filled:])
		d.filled += n
		if n == 0 {
			if err == nil {
				err = io.ErrNoProgress
			}
			return false, err
		}
		if err != nil && d.filled < len(d.dst) {
			return false, err
		}
	}
	for f.Buffered() < 2 { // trailing empty string table
		if err := f.fillSmall(r); err != nil {
			return false, err
		}
	}
	if binary.LittleEndian.Uint16(f.buf[f.r:]) != 0 {
		return false, errors.New("wire: direct frame carries a string table")
	}
	f.r += 2
	return true, nil
}

// ReadDirect consumes the next frame — whose fixed header must already be
// buffered (PeekHeader returned true) — landing its data section directly
// in dst instead of the internal buffer: buffered payload bytes are copied
// out once and the remainder is read from r straight into dst, so a large
// frame never transits (or grows) the framer's buffer. It is the blocking
// convenience over StartDirect/Fill; on ErrDirectMismatch nothing has
// been consumed and the caller can fall back to Next/Fill.
func (f *Framer) ReadDirect(r io.Reader, dst []byte) error {
	for {
		d, err := f.StartDirect(dst)
		if err != nil {
			return err
		}
		if d == nil {
			// Header and prefixes are tiny, so fillSmall never grows the
			// buffer meaningfully.
			if err := f.fillSmall(r); err != nil {
				return err
			}
			continue
		}
		for {
			done, err := d.Fill(r)
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		}
	}
}
