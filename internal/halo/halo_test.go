package halo

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/runtime"
	"repro/internal/simtime"
)

func TestAllVariantsMatchSerial(t *testing.T) {
	for _, mode := range []exec.Mode{exec.Sim, exec.Real} {
		for _, v := range Variants {
			v, mode := v, mode
			t.Run(mode.String()+"/"+v.String(), func(t *testing.T) {
				o := Options{PX: 3, PY: 2, BX: 5, BY: 4, Iters: 4, Variant: v}
				err := runtime.Run(runtime.Options{Ranks: 6, Mode: mode}, func(p *runtime.Proc) {
					res := Run(p, o)
					if !res.Valid {
						t.Errorf("rank %d: block diverges from serial reference", p.Rank())
					}
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestGridShapes(t *testing.T) {
	// 1xN and Nx1 grids (pure E/W or N/S pipelines) and a single rank.
	for _, cfg := range []struct{ px, py, ranks int }{
		{1, 1, 1}, {4, 1, 4}, {1, 4, 4}, {2, 2, 4},
	} {
		for _, v := range Variants {
			o := Options{PX: cfg.px, PY: cfg.py, BX: 3, BY: 3, Iters: 3, Variant: v}
			err := runtime.Run(runtime.Options{Ranks: cfg.ranks, Mode: exec.Sim}, func(p *runtime.Proc) {
				res := Run(p, o)
				if !res.Valid {
					t.Errorf("grid %dx%d variant %v rank %d invalid", cfg.px, cfg.py, v, p.Rank())
				}
			})
			if err != nil {
				t.Fatalf("grid %dx%d variant %v: %v", cfg.px, cfg.py, v, err)
			}
		}
	}
}

func TestProcessGridMismatchPanics(t *testing.T) {
	err := runtime.Run(runtime.Options{Ranks: 4, Mode: exec.Sim}, func(p *runtime.Proc) {
		Run(p, Options{PX: 3, PY: 2, BX: 2, BY: 2, Variant: MP})
	})
	if err == nil {
		t.Fatal("expected process-grid mismatch panic")
	}
}

func TestManyIterationsParityReuse(t *testing.T) {
	// Many sweeps stress the parity double-buffering and per-parity
	// counting requests of the NA variant.
	o := Options{PX: 2, PY: 2, BX: 4, BY: 4, Iters: 21, Variant: NA}
	err := runtime.Run(runtime.Options{Ranks: 4, Mode: exec.Sim}, func(p *runtime.Proc) {
		res := Run(p, o)
		if !res.Valid {
			t.Errorf("rank %d invalid after %d iters", p.Rank(), o.Iters)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimNAFastest(t *testing.T) {
	// Latency-bound halo exchange: NA < MP < PSCW per iteration.
	times := map[Variant]simtime.Duration{}
	for _, v := range Variants {
		v := v
		o := Options{PX: 4, PY: 4, BX: 8, BY: 8, Iters: 10, Variant: v}
		err := runtime.Run(runtime.Options{Ranks: 16, Mode: exec.Sim}, func(p *runtime.Proc) {
			res := Run(p, o)
			if p.Rank() == 0 {
				if !res.Valid {
					t.Errorf("%v invalid", v)
				}
				times[v] = res.Elapsed
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(times[NA] < times[MP]) {
		t.Errorf("NA (%v) should beat MP (%v)", times[NA], times[MP])
	}
	if !(times[MP] < times[PSCW]) {
		t.Errorf("MP (%v) should beat PSCW (%v)", times[MP], times[PSCW])
	}
}

func TestDeterministic(t *testing.T) {
	run := func() simtime.Duration {
		var d simtime.Duration
		err := runtime.Run(runtime.Options{Ranks: 4, Mode: exec.Sim}, func(p *runtime.Proc) {
			res := Run(p, Options{PX: 2, PY: 2, BX: 6, BY: 6, Iters: 5, Variant: NA})
			if p.Rank() == 0 {
				d = res.Elapsed
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSerialConservesNothingButIsStable(t *testing.T) {
	// Smoke property of the reference: repeated averaging shrinks the max.
	o := Options{PX: 1, PY: 1, BX: 8, BY: 8, Iters: 1}
	one := Serial(o)
	o.Iters = 10
	ten := Serial(o)
	maxAbs := func(a []float64) float64 {
		m := 0.0
		for _, v := range a {
			if v > m {
				m = v
			}
		}
		return m
	}
	if !(maxAbs(ten) < maxAbs(one)) {
		t.Errorf("Jacobi with zero boundary should decay: %v vs %v", maxAbs(ten), maxAbs(one))
	}
}

func TestVariantString(t *testing.T) {
	if MP.String() != "mp" || PSCW.String() != "pscw" || NA.String() != "na" {
		t.Fatal("names")
	}
}
