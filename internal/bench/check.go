package bench

import (
	"fmt"
	"time"

	"repro/internal/check"
)

// CheckStats runs the interleaving checker's model suite and reports
// exploration statistics: schedules executed and truncated, whether the
// bounded-preemption space was exhausted (a proof over that space rather
// than a sample), kernel steps, and schedules/second of wall time. The
// planted-bug rows (Snippet-1 trace P2: tail published before payload)
// must report "caught" with the replaying trace token — they are the
// checker checking itself.
func CheckStats() *Table {
	budget := 2000
	if Quick {
		budget = 300
	}
	type row struct {
		model    string
		strategy string
		opts     check.Options
		workload check.Workload
		planted  bool // a bug is planted: outcome must be "caught"
	}
	rows := []row{
		{"ring-p4", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: 10 * budget}, check.RingPublication(false), false},
		{"ring-p2-planted", "dfs p<=1", check.Options{MaxPreemptions: 1, MaxSchedules: budget}, check.RingPublication(true), true},
		{"ring-p2-planted", "sample seed=1", check.Options{MaxPreemptions: 2, MaxSchedules: budget, Seed: 1}, check.RingPublication(true), true},
		{"notify-wait", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.NotifyWait(false), false},
		{"notify-wait-shm", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.NotifyWait(true), false},
		{"class-dispatch", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.ClassDispatch(), false},
		{"reliable-xonce", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.ReliableDelivery(), false},
		{"reliable-xonce", "sample seed=1", check.Options{MaxPreemptions: 3, MaxSchedules: budget, Seed: 1}, check.ReliableDelivery(), false},
		{"crash-fanout", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.CrashFanout(), false},
		{"world-mp", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget / 2}, check.WorldExchange(), false},
		{"segring-p4", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.SegRingPublication(false), false},
		{"segring-relaxed-planted", "dfs p<=1", check.Options{MaxPreemptions: 1, MaxSchedules: budget}, check.SegRingPublication(true), true},
		{"segring-death", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.SegRingPeerDeath(), false},
		{"am-xonce", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.AMExactlyOnce(false), false},
		{"am-xonce-planted", "sample seed=1", check.Options{MaxPreemptions: 2, MaxSchedules: budget, Seed: 1}, check.AMExactlyOnce(true), true},
		{"replica-ckpt", "dfs p<=2", check.Options{MaxPreemptions: 2, MaxSchedules: budget}, check.ReplicaConsistency(false), false},
		{"replica-ckpt-planted", "sample seed=1", check.Options{MaxPreemptions: 2, MaxSchedules: budget, Seed: 1}, check.ReplicaConsistency(true), true},
	}
	t := &Table{Name: "check",
		Title: "Interleaving checker: schedule-space exploration statistics per model",
		Columns: []string{"model", "strategy", "schedules", "truncated",
			"exhausted", "steps", "sched/s", "outcome"}}
	for _, r := range rows {
		start := time.Now()
		res := check.Explore(r.opts, r.workload)
		wall := time.Since(start).Seconds()
		perSec := "-"
		if wall > 0 {
			perSec = fmt.Sprintf("%.0f", float64(res.Schedules)/wall)
		}
		outcome := "pass"
		switch {
		case r.planted && res.Err != nil:
			outcome = "caught @" + res.FailingTrace.String()
		case r.planted:
			outcome = "MISSED PLANTED BUG"
		case res.Err != nil:
			outcome = "FAIL @" + res.FailingTrace.String()
		}
		t.AddRow(r.model, r.strategy, itoa(res.Schedules), itoa(res.Truncated),
			fmt.Sprintf("%v", res.Exhausted), itoa(res.Steps), perSec, outcome)
	}
	t.Notes = append(t.Notes,
		"dfs p<=N enumerates every schedule deviating from time order in at most N places (exhausted=true makes the row a proof over that space); sample derives one RNG per iteration from the seed",
		"planted rows run a broken publication order (Snippet-1 trace P2 for the in-process ring; relaxed cursor-before-payload for the cross-process segment ring) and must be caught; the trace token replays the counterexample via check.Replay",
		"a FAIL outcome prints the replay trace of the first counterexample — run go test ./internal/check/ for the assertion detail")
	return t
}
