// Package shmfab is the intra-host cross-process transport: one mmap'd
// segment per rank pair, holding a pair of single-producer/single-consumer
// rings plus a bump-allocated bulk region, over which two OS processes on
// the same machine exchange wire frames with zero socket traffic. It is
// the XPMEM analog of the paper's intra-node mode — the entry layout
// mirrors fabric/shmring.go (64-byte cache-line entries, 24-byte header,
// 40-byte inline payload, 4096-entry bounded queue) and publication uses
// exactly the release/acquire discipline the interleaving checker's
// Snippet-1 model verifies: payload and entry stores are plain (relaxed),
// the producer's tail store is a release, the consumer's tail load an
// acquire, all via sync/atomic on the mapped words.
//
// Like netfab, the package is a leaf: it depends only on internal/wire and
// satisfies fabric.Link structurally. Unlike the TCP mesh it is lossless
// and in-order by construction, so the fabric runs it with the
// reliable-delivery layer off (see fabric.NewDistributed's Lossless seam).
package shmfab

import (
	"fmt"
	"os"
	"sync/atomic"
	"unsafe"
)

// Ring geometry. EntrySize/InlineCapacity/RingEntries deliberately equal
// fabric's RingEntrySize/RingInlineCapacity/RingCapacity: the cross-process
// ring is the same structure as the in-process notification ring, shared
// over mmap instead of the NIC mutex.
const (
	// EntrySize is one ring entry: a cache line.
	EntrySize = 64
	// InlineCapacity is the payload carried inside an entry after the
	// 24-byte header (3 control words).
	InlineCapacity = EntrySize - 24
	// RingEntries is the bounded queue depth per direction.
	RingEntries = 4096
	// BulkSize is the per-direction circular bulk region for payloads
	// above InlineCapacity (and for generically encoded control frames).
	BulkSize = 4 << 20
)

// Segment layout: a header page, then two direction blocks. Direction 0
// always flows lower rank -> higher rank. Each direction block is a
// control area (each word on its own cache line), the entry ring, and the
// bulk region.
const (
	segMagic   = 0x6e6173686d3031 // "nashm01" tag
	segVersion = 1

	headerSize = 4096
	ctrlSize   = 512
	dirSize    = ctrlSize + RingEntries*EntrySize + BulkSize

	// SegmentSize is the full byte size of one rank-pair segment.
	SegmentSize = headerSize + 2*dirSize

	// Header word offsets.
	hdrMagic   = 0
	hdrVersion = 8
	hdrEntries = 16
	hdrBulk    = 24

	// Control word offsets within a direction block. Producer-owned words
	// (tail, bulkTail, heartbeat, closed) and consumer-owned words (head,
	// bulkHead) each sit on their own cache line so the two sides never
	// write the same line.
	offTail      = 0
	offHead      = 64
	offBulkTail  = 128
	offBulkHead  = 192
	offHeartbeat = 256
	offClosed    = 320
)

// Segment is one mapped rank-pair segment. Lo < Hi are the two ranks
// sharing it; direction 0 carries Lo's sends to Hi.
type Segment struct {
	Lo, Hi int
	mem    []byte
	unmap  func() error // nil for heap-backed segments
}

// word returns the mapped uint64 at byte offset off. The mapping is page
// aligned (heap segments are allocated as []uint64), so every control
// offset is 8-byte aligned.
func (s *Segment) word(off int) *uint64 {
	return (*uint64)(unsafe.Pointer(&s.mem[off]))
}

// dir returns the byte range of direction d's block.
func (s *Segment) dir(d int) []byte {
	base := headerSize + d*dirSize
	return s.mem[base : base+dirSize : base+dirSize]
}

// init writes the header words. Both mapping processes may run it
// concurrently on a fresh file: every store writes the same constant, so
// the race is benign across processes, and the magic word is stored last
// with release so a validating reader that observes it also observes the
// geometry words.
func (s *Segment) init() {
	atomic.StoreUint64(s.word(hdrVersion), segVersion)
	atomic.StoreUint64(s.word(hdrEntries), RingEntries)
	atomic.StoreUint64(s.word(hdrBulk), BulkSize)
	atomic.StoreUint64(s.word(hdrMagic), segMagic)
}

// validate checks a mapped segment's header, initializing it first when
// the segment is fresh (magic still zero).
func (s *Segment) validate() error {
	if len(s.mem) != SegmentSize {
		return fmt.Errorf("shmfab: segment is %d bytes, want %d", len(s.mem), SegmentSize)
	}
	if uintptr(unsafe.Pointer(&s.mem[0]))%8 != 0 {
		return fmt.Errorf("shmfab: segment base not 8-byte aligned")
	}
	if atomic.LoadUint64(s.word(hdrMagic)) == 0 {
		s.init()
	}
	if m := atomic.LoadUint64(s.word(hdrMagic)); m != segMagic {
		return fmt.Errorf("shmfab: bad segment magic %#x", m)
	}
	if v := atomic.LoadUint64(s.word(hdrVersion)); v != segVersion {
		return fmt.Errorf("shmfab: segment version %d, want %d", v, segVersion)
	}
	if e := atomic.LoadUint64(s.word(hdrEntries)); e != RingEntries {
		return fmt.Errorf("shmfab: segment ring depth %d, want %d", e, RingEntries)
	}
	if b := atomic.LoadUint64(s.word(hdrBulk)); b != BulkSize {
		return fmt.Errorf("shmfab: segment bulk size %d, want %d", b, BulkSize)
	}
	return nil
}

// Close unmaps a file-backed segment (no-op for heap segments).
func (s *Segment) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	return u()
}

// NewHeapSegment builds an in-process segment for tests and the local shm
// cluster: the "mapping" is ordinary heap memory shared by reference
// between rank goroutines. Allocated as []uint64 so the control words are
// aligned for sync/atomic.
func NewHeapSegment(lo, hi int) *Segment {
	words := make([]uint64, SegmentSize/8)
	s := &Segment{
		Lo:  lo,
		Hi:  hi,
		mem: unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), SegmentSize),
	}
	s.init()
	return s
}

// MapFileSegment sizes and maps a segment file shared with one peer. The
// file may be fresh (the mapper initializes it) or already initialized by
// the launcher or the peer; Truncate to the fixed size is idempotent.
func MapFileSegment(f *os.File, lo, hi int) (*Segment, error) {
	if err := f.Truncate(SegmentSize); err != nil {
		return nil, fmt.Errorf("shmfab: sizing segment: %w", err)
	}
	mem, unmap, err := mapShared(f, SegmentSize)
	if err != nil {
		return nil, err
	}
	s := &Segment{Lo: lo, Hi: hi, mem: mem, unmap: unmap}
	if err := s.validate(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// PairName is the file name under NA_SHM_DIR for the (lo,hi) pair segment.
func PairName(lo, hi int) string {
	if lo > hi {
		lo, hi = hi, lo
	}
	return fmt.Sprintf("naseg-%d-%d", lo, hi)
}

// OpenDirSegments opens (creating as needed) this rank's segment files in
// dir, one per peer, and maps them. Returned slice is indexed by peer rank
// with a nil at self.
func OpenDirSegments(dir string, self, n int) ([]*Segment, error) {
	segs := make([]*Segment, n)
	for peer := 0; peer < n; peer++ {
		if peer == self {
			continue
		}
		lo, hi := self, peer
		if lo > hi {
			lo, hi = hi, lo
		}
		f, err := os.OpenFile(dir+"/"+PairName(lo, hi), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			closeSegments(segs)
			return nil, fmt.Errorf("shmfab: opening segment for peer %d: %w", peer, err)
		}
		s, err := MapFileSegment(f, lo, hi)
		f.Close() // the mapping survives the descriptor
		if err != nil {
			closeSegments(segs)
			return nil, err
		}
		segs[peer] = s
	}
	return segs, nil
}

// MapFDSegments maps fd-passed segments: fds[peer] is an inherited
// descriptor (from the launcher's ExtraFiles) for the pair shared with
// that peer. Returned slice is indexed by peer rank with nil at self.
func MapFDSegments(fds map[int]*os.File, self, n int) ([]*Segment, error) {
	segs := make([]*Segment, n)
	for peer, f := range fds {
		if peer == self || peer < 0 || peer >= n {
			closeSegments(segs)
			return nil, fmt.Errorf("shmfab: bad peer %d in fd map", peer)
		}
		lo, hi := self, peer
		if lo > hi {
			lo, hi = hi, lo
		}
		s, err := MapFileSegment(f, lo, hi)
		f.Close()
		if err != nil {
			closeSegments(segs)
			return nil, err
		}
		segs[peer] = s
	}
	for peer := 0; peer < n; peer++ {
		if peer != self && segs[peer] == nil {
			closeSegments(segs)
			return nil, fmt.Errorf("shmfab: no segment fd for peer %d", peer)
		}
	}
	return segs, nil
}

func closeSegments(segs []*Segment) {
	for _, s := range segs {
		if s != nil {
			s.Close()
		}
	}
}

// CreateSegmentFile makes one anonymous shared segment file for a rank
// pair: memfd_create where available, else an unlinked temp file (in dir
// when non-empty, falling back to the system temp directory). The launcher
// calls it once per pair and passes the file to both children.
func CreateSegmentFile(dir string, lo, hi int) (*os.File, error) {
	if f, err := memfdCreate(PairName(lo, hi)); err == nil {
		if err := f.Truncate(SegmentSize); err != nil {
			f.Close()
			return nil, err
		}
		return f, nil
	}
	f, err := os.CreateTemp(dir, PairName(lo, hi)+"-*")
	if err != nil {
		return nil, err
	}
	os.Remove(f.Name()) // anonymous: the fd keeps it alive
	if err := f.Truncate(SegmentSize); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
