// Package model is the paper's §V-A analytic performance model: closed-form
// LogGP predictions for each communication scheme's latency. The `model`
// experiment validates the simulator against these predictions (and tests
// assert agreement within a few percent), closing the loop the paper draws
// between its microbenchmarks and its model.
package model

import (
	"repro/internal/loggp"
	"repro/internal/simtime"
)

// wire returns the one-way wire time for an inter-node (or intra-node)
// transfer of size bytes.
func wire(m loggp.Model, size int, shm bool) simtime.Duration {
	if shm {
		return m.SHM.Time(size)
	}
	return m.Inter(size).Time(size)
}

// smallWire is the wire time of a zero-byte control packet.
func smallWire(m loggp.Model, shm bool) simtime.Duration {
	if shm {
		return m.SHM.L
	}
	return m.FMA.L
}

// NAPutLatency predicts the notified-put half-latency: the time from the
// origin's call until the target's Wait returns —
//
//	t = o_s + L + G·s + o_r + t_match
//
// (the paper's o_s + L + G·s + o_r with one matching step).
func NAPutLatency(m loggp.Model, size int, shm bool) simtime.Duration {
	return m.OSend + wire(m, size, shm) + m.ORecv + m.TMatchScan
}

// NAGetLatency predicts the notified-get completion at the origin: request
// leg (small) plus the data return —
//
//	t = o_s + L_req + L + G·s
func NAGetLatency(m loggp.Model, size int, shm bool) simtime.Duration {
	return m.OSend + smallWire(m, shm) + wire(m, size, shm)
}

// MPEagerLatency predicts the eager send/recv one-way latency: envelope
// software on both sides plus the bounce-buffer copy —
//
//	t = (o_s + mp_s) + L + G·(s+hdr) + (o_r + mp_r) + copy(s) + t_match
func MPEagerLatency(m loggp.Model, size int, shm bool) simtime.Duration {
	const hdr = 16
	return m.MPSendExtra + m.OSend + wire(m, size+hdr, shm) +
		m.ORecv + m.MPRecvExtra + m.CopyTime(size) + m.TMatchScan
}

// MPRendezvousLatency predicts the rendezvous one-way latency: RTS and CTS
// control legs plus the zero-copy payload —
//
//	t = send_sw + L_rts + recv_sw(match) + o_s + L_cts + recv_sw + o_s + L + G·(s+hdr) + recv_sw
func MPRendezvousLatency(m loggp.Model, size int, shm bool) simtime.Duration {
	const hdr = 16
	ctrl := wire(m, hdr, shm)
	recvSW := m.ORecv + m.MPRecvExtra
	return m.MPSendExtra + m.OSend + ctrl + // RTS
		recvSW + m.TMatchScan + m.OSend + ctrl + // match + CTS
		recvSW + m.OSend + wire(m, size+hdr, shm) + // CTS handled + DATA
		recvSW // DATA handled into the posted buffer
}

// MPLatency dispatches on the eager threshold.
func MPLatency(m loggp.Model, size, eagerThreshold int, shm bool) simtime.Duration {
	if size <= eagerThreshold {
		return MPEagerLatency(m, size, shm)
	}
	return MPRendezvousLatency(m, size, shm)
}

// PSCWPutLatency predicts the general-active-target producer-consumer
// half-latency (post, data, ack wait inside complete, completion message):
//
//	t = o_s(post) + L_post + [o_s + L + G·s + L_ack] + o_s + L_complete
//
// The post leg is pipelined in steady state (pre-posted), so the critical
// path is the put with its remote-completion ack plus the completion
// control message.
func PSCWPutLatency(m loggp.Model, size int, shm bool) simtime.Duration {
	const hdr = 16
	return m.OSend + wire(m, size, shm) + smallWire(m, shm) + // put + ack (flush in Complete)
		m.OSend + wire(m, hdr, shm) // completion message
}

// UnsyncLatency is the illegal busy-wait lower bound: o_s + L + G·s plus
// half a poll interval on average (poll not modeled here).
func UnsyncLatency(m loggp.Model, size int, shm bool) simtime.Duration {
	return m.OSend + wire(m, size, shm)
}
